//! The versioned, transport-agnostic wire protocol: typed [`Request`] and
//! [`Response`] values with exact JSON codecs.
//!
//! Every message is one JSON object carrying a `protocol_version` and a
//! `type` discriminator; on the wire (see [`super::remote`] and
//! [`super::server`]) messages are newline-delimited.  The codecs are total
//! inverses: `decode(encode(m)) == m` for every message, which is what lets
//! a remote client reconstruct a [`ProgramReport`] bit-for-bit and render
//! output byte-identical to an in-process run.
//!
//! Version negotiation is deliberately simple: a server answers a request
//! whose `protocol_version` it does not speak with
//! [`ErrorKind::Protocol`], and every response carries the server's own
//! version, so a client learns the supported version from any error.

use super::json::{hex64, parse_hex64, Json};
use crate::report::{field, string_list, ProcessOptions, ProgramReport};
use crate::store::{
    DiskStats, EvictionPolicy, NamespaceStats, PeerStats, PolicyChoice, StoreStats,
};
use crate::{CacheStats, EngineError, EngineStats};
use silobs::{HistogramSummary, HistorySample, MetricsSnapshot, SpanRecord};
use std::collections::HashSet;

/// The one protocol version this build speaks.
///
/// v2: the `stats` response restructured — per-shard entries became pure
/// view counters (the `*_entries` fields moved out) and a required
/// `store` member carries the shared store's per-namespace/per-stripe
/// counters and live policy state.  A v1 peer cannot parse a v2 stats
/// response (and vice versa), so the version negotiation must reject the
/// skew rather than fail with a misleading `malformed` error.
///
/// Still v2: the `stats` response later gained an *optional* `server`
/// member ([`ServerStats`] — connection counts and uptime, attached only
/// when a daemon answers).  Optional additions are compatible in both
/// directions (an older peer ignores the key, a newer peer tolerates its
/// absence), so they do not bump the version.
///
/// Still v2 again: the additive `metrics` and `trace_dump` request kinds
/// (answered with `metrics`/`trace` responses).  New *kinds* are optional
/// both ways by construction — a client that never sends them never sees
/// them, and a server that does not know them answers `malformed` like any
/// unknown type — so observability rides along without a version bump.
///
/// Still v2 once more: the additive `peer_inventory` and `peer_fetch`
/// request kinds (answered with `peer_inventory`/`peer_entry` responses)
/// that back summary-cache peering, and the *optional* `peer` member on
/// the `stats` response.  A daemon without the feature answers the new
/// kinds `malformed`, which a peering client treats as "feature absent"
/// rather than a fault, so mixed-version clusters keep working.
///
/// Still v2, observability round two: an *optional* `trace` member
/// ([`TraceHeader`]) on the work-carrying requests (`analyze`, `process`,
/// `batch`, `peer_fetch`) propagates a cluster-wide trace id and parent
/// span id; the matching responses grow an *optional* `trace_spans`
/// member piggybacking the callee's spans for that trace back to the
/// origin daemon.  Both are absent unless the caller opted into tracing,
/// so untraced wire bytes are unchanged.  The additive `metrics_history`
/// request kind (answered with a `metrics_history` response) serves the
/// flight recorder's ring of periodic samples.  Same doctrine as above:
/// optional members and new kinds ride along without a version bump.
pub const PROTOCOL_VERSION: u32 = 2;

/// The optional trace coordinates a traced request carries: the
/// cluster-wide trace `id` every resulting span joins, and the caller's
/// in-flight span `parent` (0 when the caller is the trace root) that the
/// callee's own root span parents under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceHeader {
    pub id: u64,
    pub parent: u64,
}

impl TraceHeader {
    fn to_json_value(self) -> Json {
        Json::obj(vec![("id", hex64(self.id)), ("parent", hex64(self.parent))])
    }

    fn from_json_value(value: &Json) -> Result<TraceHeader, String> {
        Ok(TraceHeader {
            id: parse_hex64(field(value, "id")?)?,
            parent: parse_hex64(field(value, "parent")?)?,
        })
    }
}

/// A request to the analysis service.  Every variant carries the
/// `protocol_version` the client speaks; the [`Request::analyze`]-style
/// constructors fill in [`PROTOCOL_VERSION`].
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Parse, type check, and analyze one program (no parallelization or
    /// execution).
    Analyze {
        version: u32,
        source: String,
        trace: Option<TraceHeader>,
    },
    /// Run the full pipeline over one program per the options.
    Process {
        version: u32,
        source: String,
        options: ProcessOptions,
        trace: Option<TraceHeader>,
    },
    /// [`Request::Process`] over many programs; results keep input order.
    Batch {
        version: u32,
        sources: Vec<String>,
        options: ProcessOptions,
        trace: Option<TraceHeader>,
    },
    /// Cache counters, per shard and aggregated.
    Stats { version: u32 },
    /// The observability registry: counters, gauges, and latency-histogram
    /// summaries from every layer (additive, still v2).
    Metrics { version: u32 },
    /// The retained trace spans from the service's ring buffer (additive,
    /// still v2).
    TraceDump { version: u32 },
    /// Drop every cached entry on every shard.
    ClearCaches { version: u32 },
    /// Ask a daemon to exit after responding.
    Shutdown { version: u32 },
    /// Ask a peering daemon for its compact digest inventory: the store
    /// generation plus every program/summary fingerprint it holds
    /// (additive, still v2).
    PeerInventory { version: u32 },
    /// Fetch one cached entry by namespace and fingerprint from a peering
    /// daemon (additive, still v2).  A daemon answers from its own store
    /// only — it never recomputes and never re-forwards to *its* peers, so
    /// fetch chains cannot loop.
    PeerFetch {
        version: u32,
        namespace: PeerNamespace,
        key: u64,
        trace: Option<TraceHeader>,
    },
    /// The flight recorder's retained metrics samples, oldest first
    /// (additive, still v2).  Only a daemon hosts a recorder; the
    /// in-process service answers with an error.
    MetricsHistory { version: u32 },
}

impl Request {
    pub fn analyze(source: impl Into<String>) -> Request {
        Request::Analyze {
            version: PROTOCOL_VERSION,
            source: source.into(),
            trace: None,
        }
    }

    pub fn process(source: impl Into<String>, options: ProcessOptions) -> Request {
        Request::Process {
            version: PROTOCOL_VERSION,
            source: source.into(),
            options,
            trace: None,
        }
    }

    pub fn batch(sources: Vec<String>, options: ProcessOptions) -> Request {
        Request::Batch {
            version: PROTOCOL_VERSION,
            sources,
            options,
            trace: None,
        }
    }

    pub fn stats() -> Request {
        Request::Stats {
            version: PROTOCOL_VERSION,
        }
    }

    pub fn metrics() -> Request {
        Request::Metrics {
            version: PROTOCOL_VERSION,
        }
    }

    pub fn trace_dump() -> Request {
        Request::TraceDump {
            version: PROTOCOL_VERSION,
        }
    }

    pub fn clear_caches() -> Request {
        Request::ClearCaches {
            version: PROTOCOL_VERSION,
        }
    }

    pub fn shutdown() -> Request {
        Request::Shutdown {
            version: PROTOCOL_VERSION,
        }
    }

    pub fn peer_inventory() -> Request {
        Request::PeerInventory {
            version: PROTOCOL_VERSION,
        }
    }

    pub fn peer_fetch(namespace: PeerNamespace, key: u64) -> Request {
        Request::PeerFetch {
            version: PROTOCOL_VERSION,
            namespace,
            key,
            trace: None,
        }
    }

    pub fn metrics_history() -> Request {
        Request::MetricsHistory {
            version: PROTOCOL_VERSION,
        }
    }

    /// The protocol version the request claims to speak.
    pub fn version(&self) -> u32 {
        match self {
            Request::Analyze { version, .. }
            | Request::Process { version, .. }
            | Request::Batch { version, .. }
            | Request::Stats { version }
            | Request::Metrics { version }
            | Request::TraceDump { version }
            | Request::ClearCaches { version }
            | Request::Shutdown { version }
            | Request::PeerInventory { version }
            | Request::PeerFetch { version, .. }
            | Request::MetricsHistory { version } => *version,
        }
    }

    /// The same request claiming a different protocol version (negotiation
    /// tests).
    pub fn with_version(mut self, v: u32) -> Request {
        match &mut self {
            Request::Analyze { version, .. }
            | Request::Process { version, .. }
            | Request::Batch { version, .. }
            | Request::Stats { version }
            | Request::Metrics { version }
            | Request::TraceDump { version }
            | Request::ClearCaches { version }
            | Request::Shutdown { version }
            | Request::PeerInventory { version }
            | Request::PeerFetch { version, .. }
            | Request::MetricsHistory { version } => *version = v,
        }
        self
    }

    /// The trace coordinates this request carries, if it is traced and
    /// its kind can carry them.
    pub fn trace_header(&self) -> Option<TraceHeader> {
        match self {
            Request::Analyze { trace, .. }
            | Request::Process { trace, .. }
            | Request::Batch { trace, .. }
            | Request::PeerFetch { trace, .. } => *trace,
            _ => None,
        }
    }

    /// The same request carrying trace coordinates (a no-op on kinds that
    /// cannot carry them — control requests are never traced).
    pub fn with_trace(mut self, header: TraceHeader) -> Request {
        if let Request::Analyze { trace, .. }
        | Request::Process { trace, .. }
        | Request::Batch { trace, .. }
        | Request::PeerFetch { trace, .. } = &mut self
        {
            *trace = Some(header);
        }
        self
    }

    pub fn to_json_value(&self) -> Json {
        let (kind, mut fields): (&str, Vec<(&str, Json)>) = match self {
            Request::Analyze { source, .. } => {
                ("analyze", vec![("source", Json::Str(source.clone()))])
            }
            Request::Process {
                source, options, ..
            } => (
                "process",
                vec![
                    ("source", Json::Str(source.clone())),
                    ("options", options.to_json_value()),
                ],
            ),
            Request::Batch {
                sources, options, ..
            } => (
                "batch",
                vec![
                    (
                        "sources",
                        Json::Arr(sources.iter().map(|s| Json::Str(s.clone())).collect()),
                    ),
                    ("options", options.to_json_value()),
                ],
            ),
            Request::Stats { .. } => ("stats", vec![]),
            Request::Metrics { .. } => ("metrics", vec![]),
            Request::TraceDump { .. } => ("trace_dump", vec![]),
            Request::ClearCaches { .. } => ("clear_caches", vec![]),
            Request::Shutdown { .. } => ("shutdown", vec![]),
            Request::PeerInventory { .. } => ("peer_inventory", vec![]),
            Request::PeerFetch { namespace, key, .. } => (
                "peer_fetch",
                vec![
                    ("namespace", Json::Str(namespace.wire_name().to_string())),
                    ("key", hex64(*key)),
                ],
            ),
            Request::MetricsHistory { .. } => ("metrics_history", vec![]),
        };
        let mut all = vec![
            ("protocol_version", Json::Int(self.version() as i64)),
            ("type", Json::Str(kind.to_string())),
        ];
        all.append(&mut fields);
        // The optional trace member rides last so every untraced request
        // encodes byte-identically to its pre-tracing form.
        if let Some(header) = self.trace_header() {
            all.push(("trace", header.to_json_value()));
        }
        Json::obj(all)
    }

    /// One-line wire encoding (contains no raw newlines: the JSON encoder
    /// escapes every control character).
    pub fn encode(&self) -> String {
        self.to_json_value().encode()
    }

    pub fn from_json_value(value: &Json) -> Result<Request, ServiceError> {
        let version = field_version(value)?;
        let kind = value
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| ServiceError::malformed("request is missing \"type\""))?;
        let source = |value: &Json| -> Result<String, ServiceError> {
            Ok(value
                .get("source")
                .and_then(Json::as_str)
                .ok_or_else(|| ServiceError::malformed("request is missing \"source\""))?
                .to_string())
        };
        let options = |value: &Json| -> Result<ProcessOptions, ServiceError> {
            let raw = value
                .get("options")
                .ok_or_else(|| ServiceError::malformed("request is missing \"options\""))?;
            ProcessOptions::from_json_value(raw).map_err(ServiceError::malformed)
        };
        let trace = |value: &Json| -> Result<Option<TraceHeader>, ServiceError> {
            value
                .get("trace")
                .map(TraceHeader::from_json_value)
                .transpose()
                .map_err(ServiceError::malformed)
        };
        match kind {
            "analyze" => Ok(Request::Analyze {
                version,
                source: source(value)?,
                trace: trace(value)?,
            }),
            "process" => Ok(Request::Process {
                version,
                source: source(value)?,
                options: options(value)?,
                trace: trace(value)?,
            }),
            "batch" => {
                let sources = value
                    .get("sources")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| ServiceError::malformed("request is missing \"sources\""))?
                    .iter()
                    .map(|s| {
                        s.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| ServiceError::malformed("non-string batch source"))
                    })
                    .collect::<Result<Vec<String>, ServiceError>>()?;
                Ok(Request::Batch {
                    version,
                    sources,
                    options: options(value)?,
                    trace: trace(value)?,
                })
            }
            "stats" => Ok(Request::Stats { version }),
            "metrics" => Ok(Request::Metrics { version }),
            "trace_dump" => Ok(Request::TraceDump { version }),
            "clear_caches" => Ok(Request::ClearCaches { version }),
            "shutdown" => Ok(Request::Shutdown { version }),
            "peer_inventory" => Ok(Request::PeerInventory { version }),
            "peer_fetch" => Ok(Request::PeerFetch {
                version,
                namespace: peer_namespace(value)?,
                key: parse_hex64(field(value, "key").map_err(ServiceError::malformed)?)
                    .map_err(ServiceError::malformed)?,
                trace: trace(value)?,
            }),
            "metrics_history" => Ok(Request::MetricsHistory { version }),
            other => Err(ServiceError::malformed(format!(
                "unknown request type {other:?}"
            ))),
        }
    }

    pub fn decode(line: &str) -> Result<Request, ServiceError> {
        let value = Json::parse(line)
            .map_err(|e| ServiceError::malformed(format!("unparseable request: {e}")))?;
        Request::from_json_value(&value)
    }
}

/// Which store namespace a [`Request::PeerFetch`] addresses.  Only the
/// two durable namespaces are fetchable — walk records are derived data
/// that every daemon can rebuild from a fetched program, so shipping them
/// would spend bytes on nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PeerNamespace {
    Programs,
    Summaries,
}

impl PeerNamespace {
    pub fn wire_name(self) -> &'static str {
        match self {
            PeerNamespace::Programs => "programs",
            PeerNamespace::Summaries => "summaries",
        }
    }

    pub fn from_wire_name(name: &str) -> Option<PeerNamespace> {
        Some(match name {
            "programs" => PeerNamespace::Programs,
            "summaries" => PeerNamespace::Summaries,
            _ => return None,
        })
    }
}

fn peer_namespace(value: &Json) -> Result<PeerNamespace, ServiceError> {
    value
        .get("namespace")
        .and_then(Json::as_str)
        .and_then(PeerNamespace::from_wire_name)
        .ok_or_else(|| {
            ServiceError::malformed("\"namespace\" must be \"programs\" or \"summaries\"")
        })
}

/// What the analysis-only [`Request::Analyze`] returns.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzeSummary {
    /// Content fingerprint of the normalized program (the cache key).
    pub fingerprint: u64,
    /// Whether the program cache served the request.
    pub cache_hit: bool,
    /// Structural classification at `main`'s exit.
    pub structure: String,
    pub preserves_tree: bool,
    /// Structure warnings, rendered.
    pub warnings: Vec<String>,
    /// Rounds the interprocedural analysis needed.
    pub rounds: usize,
    /// Stable digest of the full analysis result.
    pub analysis_digest: u64,
}

impl AnalyzeSummary {
    fn to_json_value(&self) -> Json {
        Json::obj(vec![
            ("fingerprint", hex64(self.fingerprint)),
            ("cache_hit", Json::Bool(self.cache_hit)),
            ("structure", Json::Str(self.structure.clone())),
            ("preserves_tree", Json::Bool(self.preserves_tree)),
            (
                "warnings",
                Json::Arr(self.warnings.iter().map(|w| Json::Str(w.clone())).collect()),
            ),
            ("rounds", Json::Int(self.rounds as i64)),
            ("analysis_digest", hex64(self.analysis_digest)),
        ])
    }

    fn from_json_value(value: &Json) -> Result<AnalyzeSummary, String> {
        Ok(AnalyzeSummary {
            fingerprint: parse_hex64(field(value, "fingerprint")?)?,
            cache_hit: field(value, "cache_hit")?
                .as_bool()
                .ok_or("cache_hit must be a bool")?,
            structure: field(value, "structure")?
                .as_str()
                .ok_or("structure must be a string")?
                .to_string(),
            preserves_tree: field(value, "preserves_tree")?
                .as_bool()
                .ok_or("preserves_tree must be a bool")?,
            warnings: string_list(field(value, "warnings")?)?,
            rounds: field(value, "rounds")?
                .as_u64()
                .ok_or("rounds must be a count")? as usize,
            analysis_digest: parse_hex64(field(value, "analysis_digest")?)?,
        })
    }
}

/// Daemon-side counters attached to a [`Response::Stats`] by the serving
/// `sild` process (absent when the service answers in process — there is
/// no server to count connections then).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerStats {
    /// Which server is answering: `"threaded"` (one thread per
    /// connection) or `"async"` (the silio event loop).
    pub kind: String,
    /// Connections accepted since the server started.
    pub accepted: u64,
    /// Connections currently open.
    pub active: u64,
    /// Whole seconds since the server started serving.
    pub uptime_ticks: u64,
}

impl ServerStats {
    fn to_json_value(&self) -> Json {
        Json::obj(vec![
            ("kind", Json::Str(self.kind.clone())),
            ("accepted", Json::Int(self.accepted as i64)),
            ("active", Json::Int(self.active as i64)),
            ("uptime_ticks", Json::Int(self.uptime_ticks as i64)),
        ])
    }

    fn from_json_value(value: &Json) -> Result<ServerStats, String> {
        let count = |key: &str| -> Result<u64, String> {
            field(value, key)?
                .as_u64()
                .ok_or_else(|| format!("\"{key}\" must be a count"))
        };
        Ok(ServerStats {
            kind: field(value, "kind")?
                .as_str()
                .ok_or("\"kind\" must be a string")?
                .to_string(),
            accepted: count("accepted")?,
            active: count("active")?,
            uptime_ticks: count("uptime_ticks")?,
        })
    }
}

/// One trace span on the wire: a named interval attributed to a request
/// id, timestamped in process ticks (microseconds — see `silobs::ticks`),
/// carrying its trace-tree coordinates (`trace`/`span_id`/`parent`, all 0
/// for untraced spans) and the address of the daemon that recorded it.
/// The in-memory `silobs::SpanRecord` keeps a `&'static str` name; the
/// wire form owns its strings so a remote client can decode spans whose
/// names and origins it has never seen.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpan {
    pub request: u64,
    pub span: String,
    pub start_us: u64,
    pub end_us: u64,
    /// The trace this span belongs to; 0 means untraced.
    pub trace: u64,
    /// This span's own id; 0 only on spans decoded from a pre-tracing
    /// peer.
    pub span_id: u64,
    /// The parent span id; 0 means this span roots its trace.
    pub parent: u64,
    /// Listen address of the daemon that recorded the span, or
    /// `"in-process"`.
    pub origin: String,
}

impl TraceSpan {
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }

    /// Render spans as ndjson, one object per line, byte-identical to
    /// `silobs::Tracer::to_ndjson` for the same spans: tree coordinates
    /// appear (as unpadded hex) only when the span is traced, `origin`
    /// always.
    pub fn to_ndjson(spans: &[TraceSpan]) -> String {
        let mut out = String::new();
        for span in spans {
            out.push_str(&format!(
                "{{\"request\":{},\"span\":\"{}\",\"start_us\":{},\"end_us\":{},\"duration_us\":{}",
                span.request,
                span.span,
                span.start_us,
                span.end_us,
                span.duration_us()
            ));
            if span.trace != 0 {
                out.push_str(&format!(
                    ",\"trace\":\"{:x}\",\"span_id\":\"{:x}\",\"parent\":\"{:x}\"",
                    span.trace, span.span_id, span.parent
                ));
            }
            out.push_str(&format!(",\"origin\":\"{}\"}}\n", span.origin));
        }
        out
    }

    fn to_json_value(&self) -> Json {
        Json::obj(vec![
            ("request", Json::Int(self.request as i64)),
            ("span", Json::Str(self.span.clone())),
            ("start_us", Json::Int(self.start_us as i64)),
            ("end_us", Json::Int(self.end_us as i64)),
            ("duration_us", Json::Int(self.duration_us() as i64)),
            ("trace", hex64(self.trace)),
            ("span_id", hex64(self.span_id)),
            ("parent", hex64(self.parent)),
            ("origin", Json::Str(self.origin.clone())),
        ])
    }

    fn from_json_value(value: &Json) -> Result<TraceSpan, String> {
        let count = |key: &str| -> Result<u64, String> {
            field(value, key)?
                .as_u64()
                .ok_or_else(|| format!("\"{key}\" must be a count"))
        };
        // The tree fields are optional so spans from a pre-tracing peer
        // still decode (as untraced, locally recorded ones).
        let id = |key: &str| -> Result<u64, String> {
            value
                .get(key)
                .map(parse_hex64)
                .transpose()
                .map(|v| v.unwrap_or(0))
        };
        Ok(TraceSpan {
            request: count("request")?,
            span: field(value, "span")?
                .as_str()
                .ok_or("\"span\" must be a string")?
                .to_string(),
            start_us: count("start_us")?,
            end_us: count("end_us")?,
            trace: id("trace")?,
            span_id: id("span_id")?,
            parent: id("parent")?,
            origin: match value.get("origin") {
                Some(raw) => raw
                    .as_str()
                    .ok_or("\"origin\" must be a string")?
                    .to_string(),
                None => "in-process".to_string(),
            },
        })
    }

    /// The in-memory form of a wire span, origin preserved — what a
    /// daemon adopts into its own ring when a peer piggybacks spans back.
    pub fn to_record(&self) -> SpanRecord {
        SpanRecord {
            request: self.request,
            name: std::borrow::Cow::Owned(self.span.clone()),
            start_us: self.start_us,
            end_us: self.end_us,
            trace: self.trace,
            span_id: self.span_id,
            parent: self.parent,
            origin: Some(std::sync::Arc::from(self.origin.as_str())),
        }
    }
}

impl From<&SpanRecord> for TraceSpan {
    fn from(record: &SpanRecord) -> TraceSpan {
        TraceSpan {
            request: record.request,
            span: record.name.to_string(),
            start_us: record.start_us,
            end_us: record.end_us,
            trace: record.trace,
            span_id: record.span_id,
            parent: record.parent,
            origin: record.origin.as_deref().unwrap_or("in-process").to_string(),
        }
    }
}

/// Encode a [`MetricsSnapshot`] for the wire: three name→value maps, with
/// histograms as quantile-summary objects.
pub fn metrics_snapshot_to_json(snapshot: &MetricsSnapshot) -> Json {
    let counters = Json::Obj(
        snapshot
            .counters
            .iter()
            .map(|(name, value)| (name.clone(), Json::Int(*value as i64)))
            .collect(),
    );
    let gauges = Json::Obj(
        snapshot
            .gauges
            .iter()
            .map(|(name, value)| (name.clone(), Json::Int(*value)))
            .collect(),
    );
    let histograms = Json::Obj(
        snapshot
            .histograms
            .iter()
            .map(|(name, summary)| {
                (
                    name.clone(),
                    Json::obj(vec![
                        ("count", Json::Int(summary.count as i64)),
                        ("sum", Json::Int(summary.sum as i64)),
                        ("min", Json::Int(summary.min as i64)),
                        ("max", Json::Int(summary.max as i64)),
                        ("p50", Json::Int(summary.p50 as i64)),
                        ("p90", Json::Int(summary.p90 as i64)),
                        ("p99", Json::Int(summary.p99 as i64)),
                        ("p999", Json::Int(summary.p999 as i64)),
                    ]),
                )
            })
            .collect(),
    );
    Json::obj(vec![
        ("counters", counters),
        ("gauges", gauges),
        ("histograms", histograms),
    ])
}

/// Inverse of [`metrics_snapshot_to_json`].
pub fn metrics_snapshot_from_json(value: &Json) -> Result<MetricsSnapshot, String> {
    let map = |key: &str| -> Result<&[(String, Json)], String> {
        field(value, key)?
            .as_obj()
            .ok_or_else(|| format!("\"{key}\" must be an object"))
    };
    let counters = map("counters")?
        .iter()
        .map(|(name, raw)| {
            raw.as_u64()
                .map(|v| (name.clone(), v))
                .ok_or_else(|| format!("counter {name:?} must be a count"))
        })
        .collect::<Result<Vec<_>, String>>()?;
    let gauges = map("gauges")?
        .iter()
        .map(|(name, raw)| {
            raw.as_i64()
                .map(|v| (name.clone(), v))
                .ok_or_else(|| format!("gauge {name:?} must be an integer"))
        })
        .collect::<Result<Vec<_>, String>>()?;
    let histograms = map("histograms")?
        .iter()
        .map(|(name, raw)| {
            let count = |key: &str| -> Result<u64, String> {
                field(raw, key)?
                    .as_u64()
                    .ok_or_else(|| format!("histogram {name:?} field \"{key}\" must be a count"))
            };
            Ok((
                name.clone(),
                HistogramSummary {
                    count: count("count")?,
                    sum: count("sum")?,
                    min: count("min")?,
                    max: count("max")?,
                    p50: count("p50")?,
                    p90: count("p90")?,
                    p99: count("p99")?,
                    p999: count("p999")?,
                },
            ))
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(MetricsSnapshot {
        counters,
        gauges,
        histograms,
    })
}

/// A response from the analysis service.  Every variant carries the
/// responder's protocol version — on a version mismatch the client reads
/// the supported version out of the [`Response::Error`].
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Analyze`].
    Analyzed {
        version: u32,
        summary: AnalyzeSummary,
        /// The answering daemon's spans for the request's trace, empty
        /// unless the request carried a [`TraceHeader`] — the piggyback
        /// that lets the origin daemon assemble a cross-daemon tree.
        trace_spans: Vec<TraceSpan>,
    },
    /// Answer to [`Request::Process`].
    Report {
        version: u32,
        report: ProgramReport,
        /// See [`Response::Analyzed::trace_spans`].
        trace_spans: Vec<TraceSpan>,
    },
    /// Answer to [`Request::Batch`]: per-input report or error, in input
    /// order.
    Batch {
        version: u32,
        items: Vec<Result<ProgramReport, ServiceError>>,
        /// See [`Response::Analyzed::trace_spans`].
        trace_spans: Vec<TraceSpan>,
    },
    /// Answer to [`Request::Stats`]: one per-shard view-counter entry per
    /// engine shard, their field-wise aggregate (a single-engine service
    /// reports one shard), the shared store's own per-namespace and
    /// per-stripe counters, and — when a daemon answers — the server's
    /// connection counters.
    Stats {
        version: u32,
        shards: Vec<EngineStats>,
        total: EngineStats,
        store: Box<StoreStats>,
        server: Option<ServerStats>,
    },
    /// Answer to [`Request::Metrics`]: the observability registry of the
    /// answering service — engine/store instruments, plus the server
    /// layer's own (`server.*`) when a daemon answers.
    Metrics {
        version: u32,
        metrics: MetricsSnapshot,
    },
    /// Answer to [`Request::TraceDump`]: the retained trace spans, oldest
    /// first, merged with the server layer's own spans when a daemon
    /// answers.
    Trace { version: u32, spans: Vec<TraceSpan> },
    /// Answer to [`Request::ClearCaches`].
    Cleared { version: u32 },
    /// Answer to [`Request::Shutdown`]; the daemon exits after sending it.
    ShuttingDown { version: u32 },
    /// Answer to [`Request::PeerInventory`]: the answering store's
    /// generation (bumped on every cache clear, so a gossiper can discard
    /// stale key sets wholesale) and the fingerprints it currently holds,
    /// sorted, per fetchable namespace.
    PeerInventory {
        version: u32,
        generation: u64,
        programs: Vec<u64>,
        summaries: Vec<u64>,
    },
    /// Answer to [`Request::PeerFetch`]: the entry's codec document when
    /// the answering store holds the key (`body` is the same verifiable
    /// JSON the durable tier persists), or `None` for a clean miss.  The
    /// store generation rides along so a fetcher can tell a miss caused
    /// by eviction (generation unchanged since the last inventory) from
    /// one caused by a clear — in the latter case every key that store
    /// advertised belongs to a dead snapshot.
    PeerEntry {
        version: u32,
        namespace: PeerNamespace,
        key: u64,
        generation: u64,
        body: Option<Json>,
        /// See [`Response::Analyzed::trace_spans`].
        trace_spans: Vec<TraceSpan>,
    },
    /// Answer to [`Request::MetricsHistory`]: the flight recorder's
    /// retained samples, oldest first — cumulative counters and gauges,
    /// per-interval histogram quantiles.
    MetricsHistory {
        version: u32,
        samples: Vec<HistorySample>,
    },
    /// The request failed as a whole.
    Error { version: u32, error: ServiceError },
}

impl Response {
    pub fn analyzed(summary: AnalyzeSummary) -> Response {
        Response::Analyzed {
            version: PROTOCOL_VERSION,
            summary,
            trace_spans: Vec::new(),
        }
    }

    pub fn report(report: ProgramReport) -> Response {
        Response::Report {
            version: PROTOCOL_VERSION,
            report,
            trace_spans: Vec::new(),
        }
    }

    pub fn batch(items: Vec<Result<ProgramReport, ServiceError>>) -> Response {
        Response::Batch {
            version: PROTOCOL_VERSION,
            items,
            trace_spans: Vec::new(),
        }
    }

    pub fn stats(shards: Vec<EngineStats>, store: StoreStats) -> Response {
        let mut total = EngineStats::default();
        for shard in &shards {
            total.absorb(shard);
        }
        Response::Stats {
            version: PROTOCOL_VERSION,
            shards,
            total,
            store: Box::new(store),
            server: None,
        }
    }

    /// Attach daemon-side server counters to a [`Response::Stats`] (the
    /// serving `sild` process does this on the way out; other responses
    /// pass through unchanged).
    pub fn with_server_stats(mut self, stats: ServerStats) -> Response {
        if let Response::Stats { server, .. } = &mut self {
            *server = Some(stats);
        }
        self
    }

    pub fn metrics(metrics: MetricsSnapshot) -> Response {
        Response::Metrics {
            version: PROTOCOL_VERSION,
            metrics,
        }
    }

    pub fn trace(spans: Vec<TraceSpan>) -> Response {
        Response::Trace {
            version: PROTOCOL_VERSION,
            spans,
        }
    }

    /// Splice the daemon's own `server.*` metrics into a
    /// [`Response::Metrics`] on its way out (other responses pass through
    /// unchanged) — the server-side sibling of [`Response::with_server_stats`].
    pub fn with_server_metrics(mut self, server: MetricsSnapshot) -> Response {
        if let Response::Metrics { metrics, .. } = &mut self {
            metrics.extend_disjoint(server);
        }
        self
    }

    /// Merge the daemon's own spans into a [`Response::Trace`] on its way
    /// out, keeping the combined dump ordered by start tick (other
    /// responses pass through unchanged).  Spans already present are
    /// skipped by span id — a slow capture held by the server tracer may
    /// duplicate spans still live in the service tracer's ring.
    pub fn with_server_spans(mut self, server: Vec<TraceSpan>) -> Response {
        if let Response::Trace { spans, .. } = &mut self {
            let mut seen: HashSet<u64> = spans
                .iter()
                .map(|span| span.span_id)
                .filter(|id| *id != 0)
                .collect();
            for span in server {
                if span.span_id == 0 || seen.insert(span.span_id) {
                    spans.push(span);
                }
            }
            spans.sort_by_key(|span| (span.start_us, span.request));
        }
        self
    }

    pub fn cleared() -> Response {
        Response::Cleared {
            version: PROTOCOL_VERSION,
        }
    }

    pub fn shutting_down() -> Response {
        Response::ShuttingDown {
            version: PROTOCOL_VERSION,
        }
    }

    pub fn peer_inventory(generation: u64, programs: Vec<u64>, summaries: Vec<u64>) -> Response {
        Response::PeerInventory {
            version: PROTOCOL_VERSION,
            generation,
            programs,
            summaries,
        }
    }

    pub fn peer_entry(
        namespace: PeerNamespace,
        key: u64,
        generation: u64,
        body: Option<Json>,
    ) -> Response {
        Response::PeerEntry {
            version: PROTOCOL_VERSION,
            namespace,
            key,
            generation,
            body,
            trace_spans: Vec::new(),
        }
    }

    pub fn metrics_history(samples: Vec<HistorySample>) -> Response {
        Response::MetricsHistory {
            version: PROTOCOL_VERSION,
            samples,
        }
    }

    /// The piggybacked callee spans this response carries (empty on kinds
    /// that cannot carry them).
    pub fn trace_spans(&self) -> &[TraceSpan] {
        match self {
            Response::Analyzed { trace_spans, .. }
            | Response::Report { trace_spans, .. }
            | Response::Batch { trace_spans, .. }
            | Response::PeerEntry { trace_spans, .. } => trace_spans,
            _ => &[],
        }
    }

    /// Take the piggybacked spans out for adoption into a local tracer,
    /// leaving the response otherwise intact.
    pub fn take_trace_spans(&mut self) -> Vec<TraceSpan> {
        match self {
            Response::Analyzed { trace_spans, .. }
            | Response::Report { trace_spans, .. }
            | Response::Batch { trace_spans, .. }
            | Response::PeerEntry { trace_spans, .. } => std::mem::take(trace_spans),
            _ => Vec::new(),
        }
    }

    /// Attach the answering daemon's spans for the request's trace (a
    /// no-op on kinds that cannot carry them — only work-carrying
    /// responses piggyback).
    pub fn with_trace_spans(mut self, spans: Vec<TraceSpan>) -> Response {
        if let Response::Analyzed { trace_spans, .. }
        | Response::Report { trace_spans, .. }
        | Response::Batch { trace_spans, .. }
        | Response::PeerEntry { trace_spans, .. } = &mut self
        {
            *trace_spans = spans;
        }
        self
    }

    pub fn error(error: ServiceError) -> Response {
        Response::Error {
            version: PROTOCOL_VERSION,
            error,
        }
    }

    /// The protocol version of whoever produced this response.
    pub fn version(&self) -> u32 {
        match self {
            Response::Analyzed { version, .. }
            | Response::Report { version, .. }
            | Response::Batch { version, .. }
            | Response::Stats { version, .. }
            | Response::Metrics { version, .. }
            | Response::Trace { version, .. }
            | Response::Cleared { version }
            | Response::ShuttingDown { version }
            | Response::PeerInventory { version, .. }
            | Response::PeerEntry { version, .. }
            | Response::MetricsHistory { version, .. }
            | Response::Error { version, .. } => *version,
        }
    }

    pub fn to_json_value(&self) -> Json {
        let (kind, mut fields): (&str, Vec<(&str, Json)>) = match self {
            Response::Analyzed { summary, .. } => {
                ("analyzed", vec![("summary", summary.to_json_value())])
            }
            Response::Report { report, .. } => ("report", vec![("report", report.to_json_value())]),
            Response::Batch { items, .. } => (
                "batch",
                vec![(
                    "items",
                    Json::Arr(
                        items
                            .iter()
                            .map(|item| match item {
                                Ok(report) => Json::obj(vec![("report", report.to_json_value())]),
                                Err(error) => Json::obj(vec![("error", error.to_json_value())]),
                            })
                            .collect(),
                    ),
                )],
            ),
            Response::Stats {
                shards,
                total,
                store,
                server,
                ..
            } => {
                let mut fields = vec![
                    (
                        "shards",
                        Json::Arr(shards.iter().map(engine_stats_to_json).collect()),
                    ),
                    ("total", engine_stats_to_json(total)),
                    ("store", store_stats_to_json(store)),
                ];
                if let Some(server) = server {
                    fields.push(("server", server.to_json_value()));
                }
                ("stats", fields)
            }
            Response::Metrics { metrics, .. } => (
                "metrics",
                vec![("metrics", metrics_snapshot_to_json(metrics))],
            ),
            Response::Trace { spans, .. } => (
                "trace",
                vec![(
                    "spans",
                    Json::Arr(spans.iter().map(TraceSpan::to_json_value).collect()),
                )],
            ),
            Response::Cleared { .. } => ("cleared", vec![]),
            Response::ShuttingDown { .. } => ("shutting_down", vec![]),
            Response::PeerInventory {
                generation,
                programs,
                summaries,
                ..
            } => {
                let keys = |keys: &[u64]| Json::Arr(keys.iter().copied().map(hex64).collect());
                (
                    "peer_inventory",
                    vec![
                        ("generation", Json::Int(*generation as i64)),
                        ("programs", keys(programs)),
                        ("summaries", keys(summaries)),
                    ],
                )
            }
            Response::PeerEntry {
                namespace,
                key,
                generation,
                body,
                ..
            } => {
                let mut fields = vec![
                    ("namespace", Json::Str(namespace.wire_name().to_string())),
                    ("key", hex64(*key)),
                    ("generation", Json::Int(*generation as i64)),
                ];
                if let Some(body) = body {
                    fields.push(("body", body.clone()));
                }
                ("peer_entry", fields)
            }
            Response::MetricsHistory { samples, .. } => (
                "metrics_history",
                vec![(
                    "samples",
                    Json::Arr(
                        samples
                            .iter()
                            .map(|sample| {
                                Json::obj(vec![
                                    ("at_us", Json::Int(sample.at_us as i64)),
                                    ("metrics", metrics_snapshot_to_json(&sample.metrics)),
                                ])
                            })
                            .collect(),
                    ),
                )],
            ),
            Response::Error { error, .. } => ("error", vec![("error", error.to_json_value())]),
        };
        let mut all = vec![
            ("protocol_version", Json::Int(self.version() as i64)),
            ("type", Json::Str(kind.to_string())),
        ];
        all.append(&mut fields);
        // Piggybacked spans ride last, and only when present, so every
        // untraced response encodes byte-identically to its pre-tracing
        // form.
        let trace_spans = self.trace_spans();
        if !trace_spans.is_empty() {
            all.push((
                "trace_spans",
                Json::Arr(trace_spans.iter().map(TraceSpan::to_json_value).collect()),
            ));
        }
        Json::obj(all)
    }

    /// One-line wire encoding.
    pub fn encode(&self) -> String {
        self.to_json_value().encode()
    }

    pub fn from_json_value(value: &Json) -> Result<Response, ServiceError> {
        let version = field_version(value)?;
        let kind = value
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| ServiceError::malformed("response is missing \"type\""))?;
        let trace_spans = |value: &Json| -> Result<Vec<TraceSpan>, ServiceError> {
            match value.get("trace_spans") {
                None => Ok(Vec::new()),
                Some(raw) => raw
                    .as_arr()
                    .ok_or_else(|| ServiceError::malformed("\"trace_spans\" must be an array"))?
                    .iter()
                    .map(|s| TraceSpan::from_json_value(s).map_err(ServiceError::malformed))
                    .collect(),
            }
        };
        match kind {
            "analyzed" => {
                let raw = value
                    .get("summary")
                    .ok_or_else(|| ServiceError::malformed("missing \"summary\""))?;
                Ok(Response::Analyzed {
                    version,
                    summary: AnalyzeSummary::from_json_value(raw)
                        .map_err(ServiceError::malformed)?,
                    trace_spans: trace_spans(value)?,
                })
            }
            "report" => {
                let raw = value
                    .get("report")
                    .ok_or_else(|| ServiceError::malformed("missing \"report\""))?;
                Ok(Response::Report {
                    version,
                    report: ProgramReport::from_json_value(raw).map_err(ServiceError::malformed)?,
                    trace_spans: trace_spans(value)?,
                })
            }
            "batch" => {
                let raw = value
                    .get("items")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| ServiceError::malformed("missing \"items\""))?;
                let items = raw
                    .iter()
                    .map(|item| {
                        if let Some(report) = item.get("report") {
                            ProgramReport::from_json_value(report)
                                .map(Ok)
                                .map_err(ServiceError::malformed)
                        } else if let Some(error) = item.get("error") {
                            ServiceError::from_json_value(error).map(Err)
                        } else {
                            Err(ServiceError::malformed(
                                "batch item carries neither \"report\" nor \"error\"",
                            ))
                        }
                    })
                    .collect::<Result<Vec<_>, ServiceError>>()?;
                Ok(Response::Batch {
                    version,
                    items,
                    trace_spans: trace_spans(value)?,
                })
            }
            "stats" => {
                let shards = value
                    .get("shards")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| ServiceError::malformed("missing \"shards\""))?
                    .iter()
                    .map(|s| engine_stats_from_json(s).map_err(ServiceError::malformed))
                    .collect::<Result<Vec<_>, ServiceError>>()?;
                let total = value
                    .get("total")
                    .ok_or_else(|| ServiceError::malformed("missing \"total\""))
                    .and_then(|t| engine_stats_from_json(t).map_err(ServiceError::malformed))?;
                let store = value
                    .get("store")
                    .ok_or_else(|| ServiceError::malformed("missing \"store\""))
                    .and_then(|s| store_stats_from_json(s).map_err(ServiceError::malformed))?;
                let server = value
                    .get("server")
                    .map(|s| ServerStats::from_json_value(s).map_err(ServiceError::malformed))
                    .transpose()?;
                Ok(Response::Stats {
                    version,
                    shards,
                    total,
                    store: Box::new(store),
                    server,
                })
            }
            "metrics" => {
                let raw = value
                    .get("metrics")
                    .ok_or_else(|| ServiceError::malformed("missing \"metrics\""))?;
                Ok(Response::Metrics {
                    version,
                    metrics: metrics_snapshot_from_json(raw).map_err(ServiceError::malformed)?,
                })
            }
            "trace" => {
                let spans = value
                    .get("spans")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| ServiceError::malformed("missing \"spans\""))?
                    .iter()
                    .map(|s| TraceSpan::from_json_value(s).map_err(ServiceError::malformed))
                    .collect::<Result<Vec<_>, ServiceError>>()?;
                Ok(Response::Trace { version, spans })
            }
            "cleared" => Ok(Response::Cleared { version }),
            "shutting_down" => Ok(Response::ShuttingDown { version }),
            "peer_inventory" => {
                let keys = |key: &str| -> Result<Vec<u64>, ServiceError> {
                    value
                        .get(key)
                        .and_then(Json::as_arr)
                        .ok_or_else(|| ServiceError::malformed(format!("missing \"{key}\"")))?
                        .iter()
                        .map(|raw| parse_hex64(raw).map_err(ServiceError::malformed))
                        .collect()
                };
                Ok(Response::PeerInventory {
                    version,
                    generation: value
                        .get("generation")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| ServiceError::malformed("missing \"generation\""))?,
                    programs: keys("programs")?,
                    summaries: keys("summaries")?,
                })
            }
            "peer_entry" => Ok(Response::PeerEntry {
                version,
                namespace: peer_namespace(value)?,
                key: parse_hex64(field(value, "key").map_err(ServiceError::malformed)?)
                    .map_err(ServiceError::malformed)?,
                generation: value
                    .get("generation")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| ServiceError::malformed("missing \"generation\""))?,
                body: value.get("body").cloned(),
                trace_spans: trace_spans(value)?,
            }),
            "metrics_history" => {
                let samples = value
                    .get("samples")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| ServiceError::malformed("missing \"samples\""))?
                    .iter()
                    .map(|sample| {
                        let at_us = sample
                            .get("at_us")
                            .and_then(Json::as_u64)
                            .ok_or_else(|| ServiceError::malformed("missing \"at_us\""))?;
                        let raw = sample
                            .get("metrics")
                            .ok_or_else(|| ServiceError::malformed("missing \"metrics\""))?;
                        Ok(HistorySample {
                            at_us,
                            metrics: metrics_snapshot_from_json(raw)
                                .map_err(ServiceError::malformed)?,
                        })
                    })
                    .collect::<Result<Vec<_>, ServiceError>>()?;
                Ok(Response::MetricsHistory { version, samples })
            }
            "error" => {
                let raw = value
                    .get("error")
                    .ok_or_else(|| ServiceError::malformed("missing \"error\""))?;
                Ok(Response::Error {
                    version,
                    error: ServiceError::from_json_value(raw)?,
                })
            }
            other => Err(ServiceError::malformed(format!(
                "unknown response type {other:?}"
            ))),
        }
    }

    pub fn decode(line: &str) -> Result<Response, ServiceError> {
        let value = Json::parse(line)
            .map_err(|e| ServiceError::malformed(format!("unparseable response: {e}")))?;
        Response::from_json_value(&value)
    }
}

/// What went wrong, coarsely classified for the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The source did not parse or type check.
    Frontend,
    /// Execution was requested and the interpreter rejected the program.
    Runtime,
    /// The request spoke an unsupported protocol version.
    Protocol,
    /// The transport failed (connect, read, or write).
    Transport,
    /// The message was not a well-formed protocol message.
    Malformed,
}

impl ErrorKind {
    fn wire_name(self) -> &'static str {
        match self {
            ErrorKind::Frontend => "frontend",
            ErrorKind::Runtime => "runtime",
            ErrorKind::Protocol => "protocol",
            ErrorKind::Transport => "transport",
            ErrorKind::Malformed => "malformed",
        }
    }

    fn from_wire_name(name: &str) -> Option<ErrorKind> {
        Some(match name {
            "frontend" => ErrorKind::Frontend,
            "runtime" => ErrorKind::Runtime,
            "protocol" => ErrorKind::Protocol,
            "transport" => ErrorKind::Transport,
            "malformed" => ErrorKind::Malformed,
            _ => return None,
        })
    }
}

/// A service-level failure that travels over the wire.
///
/// Renders exactly like [`EngineError`] for the frontend/runtime kinds
/// (`frontend: …` / `runtime: …`), so a remote client's error output is
/// byte-identical to an in-process run's.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceError {
    pub kind: ErrorKind,
    pub message: String,
}

impl ServiceError {
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> ServiceError {
        ServiceError {
            kind,
            message: message.into(),
        }
    }

    pub fn malformed(message: impl Into<String>) -> ServiceError {
        ServiceError::new(ErrorKind::Malformed, message)
    }

    pub fn transport(message: impl Into<String>) -> ServiceError {
        ServiceError::new(ErrorKind::Transport, message)
    }

    /// The error a service answers when a request speaks a version it does
    /// not support.
    pub fn version_mismatch(got: u32) -> ServiceError {
        ServiceError::new(
            ErrorKind::Protocol,
            format!(
                "protocol version {got} is not supported; this service speaks {PROTOCOL_VERSION}"
            ),
        )
    }

    fn to_json_value(&self) -> Json {
        Json::obj(vec![
            ("kind", Json::Str(self.kind.wire_name().to_string())),
            ("message", Json::Str(self.message.clone())),
        ])
    }

    fn from_json_value(value: &Json) -> Result<ServiceError, ServiceError> {
        let kind = value
            .get("kind")
            .and_then(Json::as_str)
            .and_then(ErrorKind::from_wire_name)
            .ok_or_else(|| ServiceError::malformed("error is missing a known \"kind\""))?;
        let message = value
            .get("message")
            .and_then(Json::as_str)
            .ok_or_else(|| ServiceError::malformed("error is missing \"message\""))?
            .to_string();
        Ok(ServiceError { kind, message })
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind.wire_name(), self.message)
    }
}

impl std::error::Error for ServiceError {}

impl From<&EngineError> for ServiceError {
    fn from(e: &EngineError) -> ServiceError {
        match e {
            EngineError::Frontend(e) => ServiceError::new(ErrorKind::Frontend, e.to_string()),
            EngineError::Runtime(e) => ServiceError::new(ErrorKind::Runtime, e.clone()),
        }
    }
}

impl From<EngineError> for ServiceError {
    fn from(e: EngineError) -> ServiceError {
        ServiceError::from(&e)
    }
}

fn field_version(value: &Json) -> Result<u32, ServiceError> {
    value
        .get("protocol_version")
        .and_then(Json::as_u64)
        .and_then(|v| u32::try_from(v).ok())
        .ok_or_else(|| ServiceError::malformed("message is missing \"protocol_version\""))
}

/// Encode a [`CacheStats`] (one cache, stripe, or view) for the wire.
pub fn cache_stats_to_json(stats: &CacheStats) -> Json {
    Json::obj(vec![
        ("hits", Json::Int(stats.hits as i64)),
        ("misses", Json::Int(stats.misses as i64)),
        ("insertions", Json::Int(stats.insertions as i64)),
        ("evictions", Json::Int(stats.evictions as i64)),
    ])
}

fn cache_stats_from_json(value: &Json) -> Result<CacheStats, String> {
    let count = |key: &str| -> Result<u64, String> {
        field(value, key)?
            .as_u64()
            .ok_or_else(|| format!("\"{key}\" must be a count"))
    };
    Ok(CacheStats {
        hits: count("hits")?,
        misses: count("misses")?,
        insertions: count("insertions")?,
        evictions: count("evictions")?,
    })
}

/// Encode one engine's per-namespace view counters for the wire.
pub fn engine_stats_to_json(stats: &EngineStats) -> Json {
    Json::obj(vec![
        ("programs", cache_stats_to_json(&stats.programs)),
        ("summaries", cache_stats_to_json(&stats.summaries)),
        ("walks", cache_stats_to_json(&stats.walks)),
    ])
}

/// Inverse of [`engine_stats_to_json`].
pub fn engine_stats_from_json(value: &Json) -> Result<EngineStats, String> {
    Ok(EngineStats {
        programs: cache_stats_from_json(field(value, "programs")?)?,
        summaries: cache_stats_from_json(field(value, "summaries")?)?,
        walks: cache_stats_from_json(field(value, "walks")?)?,
    })
}

/// Encode one store namespace's counters and live policy state.
pub fn namespace_stats_to_json(stats: &NamespaceStats) -> Json {
    Json::obj(vec![
        ("totals", cache_stats_to_json(&stats.totals)),
        ("entries", Json::Int(stats.entries as i64)),
        ("capacity", Json::Int(stats.capacity as i64)),
        ("policy", Json::Str(stats.policy.name().to_string())),
        ("current", Json::Str(stats.current.name().to_string())),
        ("switches", Json::Int(stats.switches as i64)),
        ("ghost_hits", Json::Int(stats.ghost_hits as i64)),
        (
            "stripes",
            Json::Arr(stats.stripes.iter().map(cache_stats_to_json).collect()),
        ),
    ])
}

/// Inverse of [`namespace_stats_to_json`].
pub fn namespace_stats_from_json(value: &Json) -> Result<NamespaceStats, String> {
    let count = |key: &str| -> Result<u64, String> {
        field(value, key)?
            .as_u64()
            .ok_or_else(|| format!("\"{key}\" must be a count"))
    };
    Ok(NamespaceStats {
        totals: cache_stats_from_json(field(value, "totals")?)?,
        entries: count("entries")? as usize,
        capacity: count("capacity")? as usize,
        policy: field(value, "policy")?
            .as_str()
            .and_then(EvictionPolicy::from_name)
            .ok_or("\"policy\" must name an eviction policy")?,
        current: field(value, "current")?
            .as_str()
            .and_then(PolicyChoice::from_name)
            .ok_or("\"current\" must be \"lru\" or \"lfu\"")?,
        switches: count("switches")?,
        ghost_hits: count("ghost_hits")?,
        stripes: field(value, "stripes")?
            .as_arr()
            .ok_or("\"stripes\" must be an array")?
            .iter()
            .map(cache_stats_from_json)
            .collect::<Result<Vec<_>, String>>()?,
    })
}

/// Encode the durable disk tier's counters.
pub fn disk_stats_to_json(stats: &DiskStats) -> Json {
    Json::obj(vec![
        ("hits", Json::Int(stats.hits as i64)),
        ("misses", Json::Int(stats.misses as i64)),
        ("read_bytes", Json::Int(stats.read_bytes as i64)),
        ("written_bytes", Json::Int(stats.written_bytes as i64)),
        ("entries", Json::Int(stats.entries as i64)),
        ("live_bytes", Json::Int(stats.live_bytes as i64)),
        ("segments", Json::Int(stats.segments as i64)),
        ("flushes", Json::Int(stats.flushes as i64)),
        ("compactions", Json::Int(stats.compactions as i64)),
        ("evictions", Json::Int(stats.evictions as i64)),
        (
            "recovered_entries",
            Json::Int(stats.recovered_entries as i64),
        ),
        ("dropped_bytes", Json::Int(stats.dropped_bytes as i64)),
    ])
}

/// Inverse of [`disk_stats_to_json`].
pub fn disk_stats_from_json(value: &Json) -> Result<DiskStats, String> {
    let count = |key: &str| -> Result<u64, String> {
        field(value, key)?
            .as_u64()
            .ok_or_else(|| format!("\"{key}\" must be a count"))
    };
    Ok(DiskStats {
        hits: count("hits")?,
        misses: count("misses")?,
        read_bytes: count("read_bytes")?,
        written_bytes: count("written_bytes")?,
        entries: count("entries")?,
        live_bytes: count("live_bytes")?,
        segments: count("segments")?,
        flushes: count("flushes")?,
        compactions: count("compactions")?,
        evictions: count("evictions")?,
        recovered_entries: count("recovered_entries")?,
        dropped_bytes: count("dropped_bytes")?,
    })
}

/// Encode the peering tier's counters.
pub fn peer_stats_to_json(stats: &PeerStats) -> Json {
    Json::obj(vec![
        ("peers", Json::Int(stats.peers as i64)),
        ("quarantined", Json::Int(stats.quarantined as i64)),
        ("hits", Json::Int(stats.hits as i64)),
        ("misses", Json::Int(stats.misses as i64)),
        ("gossip_rounds", Json::Int(stats.gossip_rounds as i64)),
        ("quarantines", Json::Int(stats.quarantines as i64)),
        ("bytes_in", Json::Int(stats.bytes_in as i64)),
        ("bytes_out", Json::Int(stats.bytes_out as i64)),
        ("serves", Json::Int(stats.serves as i64)),
        ("known_keys", Json::Int(stats.known_keys as i64)),
    ])
}

/// Inverse of [`peer_stats_to_json`].
pub fn peer_stats_from_json(value: &Json) -> Result<PeerStats, String> {
    let count = |key: &str| -> Result<u64, String> {
        field(value, key)?
            .as_u64()
            .ok_or_else(|| format!("\"{key}\" must be a count"))
    };
    Ok(PeerStats {
        peers: count("peers")?,
        quarantined: count("quarantined")?,
        hits: count("hits")?,
        misses: count("misses")?,
        gossip_rounds: count("gossip_rounds")?,
        quarantines: count("quarantines")?,
        bytes_in: count("bytes_in")?,
        bytes_out: count("bytes_out")?,
        serves: count("serves")?,
        known_keys: count("known_keys")?,
    })
}

/// Encode the whole store snapshot (all three namespaces, plus the disk
/// tier when one is configured and the peering tier when a ring is
/// attached or this daemon has served peers — each member is simply
/// absent otherwise, which protocol-version-2 decoders ignore, keeping
/// the changes additive).
pub fn store_stats_to_json(stats: &StoreStats) -> Json {
    let mut members = vec![
        ("programs", namespace_stats_to_json(&stats.programs)),
        ("summaries", namespace_stats_to_json(&stats.summaries)),
        ("walks", namespace_stats_to_json(&stats.walks)),
    ];
    if let Some(disk) = &stats.disk {
        members.push(("disk", disk_stats_to_json(disk)));
    }
    if let Some(peer) = &stats.peer {
        members.push(("peer", peer_stats_to_json(peer)));
    }
    Json::obj(members)
}

/// Inverse of [`store_stats_to_json`] (a missing `"disk"` member decodes
/// as a memory-only store, a missing `"peer"` member as an unpeered one).
pub fn store_stats_from_json(value: &Json) -> Result<StoreStats, String> {
    Ok(StoreStats {
        programs: namespace_stats_from_json(field(value, "programs")?)?,
        summaries: namespace_stats_from_json(field(value, "summaries")?)?,
        walks: namespace_stats_from_json(field(value, "walks")?)?,
        disk: value.get("disk").map(disk_stats_from_json).transpose()?,
        peer: value.get("peer").map(peer_stats_from_json).transpose()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store_stats() -> StoreStats {
        let namespace = |entries: usize, capacity: usize| NamespaceStats {
            totals: CacheStats {
                hits: 7,
                misses: 3,
                insertions: 3,
                evictions: 1,
            },
            entries,
            capacity,
            policy: EvictionPolicy::Adaptive,
            current: PolicyChoice::Lfu,
            switches: 1,
            ghost_hits: 9,
            stripes: vec![
                CacheStats {
                    hits: 7,
                    misses: 1,
                    insertions: 1,
                    evictions: 1,
                },
                CacheStats {
                    hits: 0,
                    misses: 2,
                    insertions: 2,
                    evictions: 0,
                },
            ],
        };
        StoreStats {
            programs: namespace(2, 256),
            summaries: namespace(5, 1024),
            walks: namespace(3, 512),
            disk: Some(DiskStats {
                hits: 4,
                misses: 2,
                read_bytes: 4096,
                written_bytes: 8192,
                entries: 6,
                live_bytes: 8000,
                segments: 2,
                flushes: 3,
                compactions: 1,
                evictions: 1,
                recovered_entries: 5,
                dropped_bytes: 17,
            }),
            peer: Some(PeerStats {
                peers: 2,
                quarantined: 1,
                hits: 9,
                misses: 4,
                gossip_rounds: 31,
                quarantines: 1,
                bytes_in: 2048,
                bytes_out: 512,
                serves: 6,
                known_keys: 11,
            }),
        }
    }

    fn round_trip_request(request: Request) {
        let line = request.encode();
        assert!(!line.contains('\n'), "wire lines must be newline-free");
        let back = Request::decode(&line).unwrap();
        assert_eq!(back, request);
        assert_eq!(back.encode(), line);
    }

    fn round_trip_response(response: Response) {
        let line = response.encode();
        assert!(!line.contains('\n'));
        let back = Response::decode(&line).unwrap();
        assert_eq!(back, response);
        assert_eq!(back.encode(), line);
    }

    #[test]
    fn every_request_variant_round_trips() {
        round_trip_request(Request::analyze("program p\nmain() {}\n"));
        round_trip_request(Request::process(
            "src with \"quotes\" and \u{1}",
            ProcessOptions {
                execute: true,
                store_capacity: 77,
                ..ProcessOptions::default()
            },
        ));
        round_trip_request(Request::batch(
            vec!["a".into(), "b\nb".into()],
            ProcessOptions::default(),
        ));
        round_trip_request(Request::stats());
        round_trip_request(Request::metrics());
        round_trip_request(Request::trace_dump());
        round_trip_request(Request::clear_caches());
        round_trip_request(Request::shutdown());
        round_trip_request(Request::peer_inventory());
        round_trip_request(Request::peer_fetch(PeerNamespace::Programs, 0xdead_beef));
        round_trip_request(Request::peer_fetch(PeerNamespace::Summaries, u64::MAX));
        round_trip_request(Request::metrics_history());
    }

    #[test]
    fn trace_header_is_optional_and_round_trips() {
        let header = TraceHeader {
            id: 0xabc,
            parent: 0x17,
        };
        for traced in [
            Request::analyze("program p\nmain() {}\n").with_trace(header),
            Request::process("x", ProcessOptions::default()).with_trace(header),
            Request::batch(vec!["a".into()], ProcessOptions::default()).with_trace(header),
            Request::peer_fetch(PeerNamespace::Summaries, 9).with_trace(header),
        ] {
            assert_eq!(traced.trace_header(), Some(header));
            round_trip_request(traced);
        }
        // Untraced requests stay bitwise free of the optional member, and
        // control requests never grow one.
        assert!(!Request::analyze("x").encode().contains("\"trace\""));
        assert_eq!(Request::stats().with_trace(header).trace_header(), None);
    }

    #[test]
    fn peer_responses_round_trip() {
        round_trip_response(Response::peer_inventory(
            3,
            vec![1, 0xabc, u64::MAX],
            vec![],
        ));
        round_trip_response(Response::peer_inventory(0, Vec::new(), Vec::new()));
        // A hit carries the codec document verbatim; a miss omits the key
        // entirely so old-style strict decoders never see a null.
        let body = Json::obj(vec![("v", Json::Int(1)), ("fingerprint", hex64(0xfeed))]);
        round_trip_response(Response::peer_entry(
            PeerNamespace::Programs,
            0xfeed,
            2,
            Some(body),
        ));
        let miss = Response::peer_entry(PeerNamespace::Summaries, 7, 0, None);
        assert!(!miss.encode().contains("\"body\""));
        round_trip_response(miss);
    }

    fn sample_metrics() -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![
                ("engine.programs.hits".to_string(), 12),
                ("engine.programs.misses".to_string(), 3),
            ],
            gauges: vec![("server.queue_depth".to_string(), -1)],
            histograms: vec![(
                "server.serve_us".to_string(),
                HistogramSummary {
                    count: 100,
                    sum: 54_321,
                    min: 80,
                    max: 9_001,
                    p50: 420,
                    p90: 1_500,
                    p99: 7_777,
                    p999: 9_001,
                },
            )],
        }
    }

    /// An untraced local span, the shape the pre-tracing protocol carried.
    fn flat_span(request: u64, name: &str, start_us: u64, end_us: u64) -> TraceSpan {
        TraceSpan {
            request,
            span: name.into(),
            start_us,
            end_us,
            trace: 0,
            span_id: 0,
            parent: 0,
            origin: "in-process".into(),
        }
    }

    /// A traced span with tree coordinates and a daemon origin.
    fn tree_span(request: u64, name: &str, trace: u64, span_id: u64, parent: u64) -> TraceSpan {
        TraceSpan {
            request,
            span: name.into(),
            start_us: span_id * 10,
            end_us: span_id * 10 + 5,
            trace,
            span_id,
            parent,
            origin: "unix:/tmp/a.sock".into(),
        }
    }

    #[test]
    fn metrics_and_trace_responses_round_trip() {
        round_trip_response(Response::metrics(sample_metrics()));
        round_trip_response(Response::metrics(MetricsSnapshot::default()));
        round_trip_response(Response::trace(vec![
            flat_span(1, "parse", 10, 25),
            flat_span(1, "fixpoint", 26, 900),
            tree_span(2, "serve", 0x2a, 0x1f, 0x10),
        ]));
        round_trip_response(Response::trace(Vec::new()));
    }

    #[test]
    fn metrics_history_round_trips() {
        round_trip_request(Request::metrics_history());
        round_trip_response(Response::metrics_history(vec![
            HistorySample {
                at_us: 1_000_000,
                metrics: sample_metrics(),
            },
            HistorySample {
                at_us: 2_000_000,
                metrics: MetricsSnapshot::default(),
            },
        ]));
        round_trip_response(Response::metrics_history(Vec::new()));
    }

    #[test]
    fn trace_span_piggyback_rides_on_work_responses() {
        let spans = vec![tree_span(3, "serve", 0x2a, 0x1f, 0x10)];
        round_trip_response(
            Response::peer_entry(PeerNamespace::Summaries, 7, 1, None)
                .with_trace_spans(spans.clone()),
        );
        round_trip_response(
            Response::batch(vec![Err(ServiceError::new(ErrorKind::Frontend, "nope"))])
                .with_trace_spans(spans.clone()),
        );
        // Absent unless attached — untraced responses keep their exact
        // pre-tracing bytes — and a no-op on kinds that cannot carry it.
        assert!(!Response::cleared()
            .with_trace_spans(spans.clone())
            .encode()
            .contains("\"trace_spans\""));
        assert!(!Response::peer_entry(PeerNamespace::Summaries, 7, 1, None)
            .encode()
            .contains("\"trace_spans\""));
        let mut carried = Response::peer_entry(PeerNamespace::Programs, 1, 1, None)
            .with_trace_spans(spans.clone());
        assert_eq!(carried.trace_spans(), &spans[..]);
        assert_eq!(carried.take_trace_spans(), spans);
        assert_eq!(carried.trace_spans(), &[] as &[TraceSpan]);
    }

    #[test]
    fn wire_spans_adopt_back_into_records() {
        let span = tree_span(3, "peer-serve", 0x2a, 0x1f, 0x10);
        let record = span.to_record();
        assert_eq!(record.origin.as_deref(), Some("unix:/tmp/a.sock"));
        assert_eq!(record.trace, 0x2a);
        assert_eq!(TraceSpan::from(&record), span);
    }

    #[test]
    fn server_metrics_decoration_splices_disjoint_namespaces() {
        let server = MetricsSnapshot {
            counters: vec![("server.accepted".to_string(), 4)],
            gauges: vec![("server.active".to_string(), 2)],
            histograms: Vec::new(),
        };
        match Response::metrics(sample_metrics()).with_server_metrics(server) {
            Response::Metrics { metrics, .. } => {
                assert_eq!(metrics.counter("engine.programs.hits"), Some(12));
                assert_eq!(metrics.counter("server.accepted"), Some(4));
                assert_eq!(metrics.gauge("server.active"), Some(2));
                let names: Vec<&str> = metrics.counters.iter().map(|(n, _)| n.as_str()).collect();
                let mut sorted = names.clone();
                sorted.sort();
                assert_eq!(names, sorted, "decorated counters stay sorted");
            }
            other => panic!("{other:?}"),
        }
        // Decoration leaves non-metrics responses untouched.
        assert_eq!(
            Response::cleared().with_server_metrics(MetricsSnapshot::default()),
            Response::cleared()
        );
    }

    #[test]
    fn server_span_decoration_merges_in_tick_order() {
        let engine_spans = vec![flat_span(2, "fixpoint", 50, 90)];
        let server_spans = vec![
            flat_span(2, "parse", 40, 45),
            flat_span(2, "encode", 95, 99),
        ];
        match Response::trace(engine_spans).with_server_spans(server_spans) {
            Response::Trace { spans, .. } => {
                let names: Vec<&str> = spans.iter().map(|s| s.span.as_str()).collect();
                assert_eq!(names, vec!["parse", "fixpoint", "encode"]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn server_span_decoration_dedups_by_span_id() {
        let shared = tree_span(2, "serve", 0x2a, 0x1f, 0);
        // Span-id dedup: a slow capture on the server tracer can hold the
        // same span the service ring still retains.  Id-less (legacy)
        // spans are never collapsed.
        let merged = Response::trace(vec![shared.clone(), flat_span(2, "parse", 1, 2)])
            .with_server_spans(vec![
                shared,
                flat_span(2, "parse", 1, 2),
                tree_span(2, "encode", 0x2a, 0x20, 0x1f),
            ]);
        match merged {
            Response::Trace { spans, .. } => {
                assert_eq!(spans.iter().filter(|s| s.span == "serve").count(), 1);
                assert_eq!(spans.iter().filter(|s| s.span == "parse").count(), 2);
                assert_eq!(spans.iter().filter(|s| s.span == "encode").count(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn trace_ndjson_matches_the_tracer_renderer() {
        let flat = SpanRecord {
            request: 3,
            name: "queue-wait".into(),
            start_us: 7,
            end_us: 19,
            trace: 0,
            span_id: 0,
            parent: 0,
            origin: Some("in-process".into()),
        };
        let traced = SpanRecord {
            request: 4,
            name: "serve".into(),
            start_us: 20,
            end_us: 90,
            trace: 0x2a,
            span_id: 0x1f,
            parent: 0x10,
            origin: Some("unix:/tmp/a.sock".into()),
        };
        let records = vec![flat, traced];
        let wire: Vec<TraceSpan> = records.iter().map(TraceSpan::from).collect();
        assert_eq!(
            TraceSpan::to_ndjson(&wire),
            silobs::Tracer::to_ndjson(&records),
            "wire renderer and in-process renderer must agree byte-for-byte"
        );
    }

    #[test]
    fn every_simple_response_variant_round_trips() {
        round_trip_response(Response::analyzed(AnalyzeSummary {
            fingerprint: 0xfeed,
            cache_hit: true,
            structure: "TREE".into(),
            preserves_tree: true,
            warnings: vec!["w\n1".into()],
            rounds: 3,
            analysis_digest: 0xbeef,
        }));
        round_trip_response(Response::stats(
            vec![
                EngineStats::default(),
                EngineStats {
                    programs: CacheStats {
                        hits: 4,
                        misses: 2,
                        insertions: 2,
                        evictions: 0,
                    },
                    ..EngineStats::default()
                },
            ],
            sample_store_stats(),
        ));
        // The server-decorated form round-trips too, and the undecorated
        // form stays bitwise free of the optional key.
        round_trip_response(
            Response::stats(vec![EngineStats::default()], sample_store_stats()).with_server_stats(
                ServerStats {
                    kind: "async".into(),
                    accepted: 41,
                    active: 3,
                    uptime_ticks: 17,
                },
            ),
        );
        assert!(
            !Response::stats(vec![], sample_store_stats())
                .encode()
                .contains("\"server\""),
            "no daemon, no server member"
        );
        round_trip_response(Response::cleared());
        round_trip_response(Response::shutting_down());
        round_trip_response(Response::error(ServiceError::version_mismatch(99)));
        round_trip_response(Response::batch(vec![Err(ServiceError::new(
            ErrorKind::Frontend,
            "parse error at line 1",
        ))]));
    }

    #[test]
    fn stats_total_aggregates_shard_views() {
        let a = EngineStats {
            programs: CacheStats {
                hits: 2,
                misses: 1,
                insertions: 1,
                evictions: 0,
            },
            ..EngineStats::default()
        };
        let b = EngineStats {
            programs: CacheStats {
                hits: 3,
                misses: 4,
                insertions: 4,
                evictions: 0,
            },
            ..EngineStats::default()
        };
        match Response::stats(vec![a, b], sample_store_stats()) {
            Response::Stats {
                total,
                shards,
                store,
                server,
                ..
            } => {
                assert_eq!(shards.len(), 2);
                assert_eq!(total.programs.hits, 5);
                assert_eq!(total.programs.misses, 5);
                assert_eq!(store.programs.entries, 2);
                assert_eq!(store.walks.capacity, 512);
                assert_eq!(server, None, "in-process stats carry no server");
            }
            other => panic!("{other:?}"),
        }
    }

    /// Compatibility both ways across the optional `server` member: a
    /// stats line missing it decodes to `None`, and a stats line carrying
    /// unknown extra keys (a future peer) still decodes.
    #[test]
    fn optional_server_member_is_compatible_in_both_directions() {
        let bare = Response::stats(vec![EngineStats::default()], sample_store_stats());
        let decoded = Response::decode(&bare.encode()).unwrap();
        match &decoded {
            Response::Stats { server, .. } => assert_eq!(*server, None),
            other => panic!("{other:?}"),
        }

        let decorated = bare
            .clone()
            .with_server_stats(ServerStats {
                kind: "threaded".into(),
                accepted: 7,
                active: 1,
                uptime_ticks: 0,
            })
            .encode();
        match Response::decode(&decorated).unwrap() {
            Response::Stats { server, .. } => {
                let server = server.expect("decorated form carries the server");
                assert_eq!(server.kind, "threaded");
                assert_eq!(server.accepted, 7);
            }
            other => panic!("{other:?}"),
        }

        // A malformed server member is a decode error, not a silent None.
        let broken = decorated.replace("\"accepted\":7", "\"accepted\":\"x\"");
        assert!(Response::decode(&broken).is_err());
    }

    /// Same compatibility story for the optional `peer` member: absent on
    /// an unpeered store, present (and round-tripping) on a peered one.
    #[test]
    fn optional_peer_member_is_compatible_in_both_directions() {
        let mut stats = sample_store_stats();
        stats.peer = None;
        let bare = Response::stats(vec![EngineStats::default()], stats);
        assert!(
            !bare.encode().contains("\"peer\""),
            "no ring, no peer member"
        );
        match Response::decode(&bare.encode()).unwrap() {
            Response::Stats { store, .. } => assert_eq!(store.peer, None),
            other => panic!("{other:?}"),
        }

        let peered = Response::stats(vec![EngineStats::default()], sample_store_stats());
        match Response::decode(&peered.encode()).unwrap() {
            Response::Stats { store, .. } => {
                let peer = store.peer.expect("peered form carries the member");
                assert_eq!(peer.hits, 9);
                assert_eq!(peer.known_keys, 11);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn version_travels_and_can_be_overridden() {
        let request = Request::stats().with_version(99);
        assert_eq!(request.version(), 99);
        let decoded = Request::decode(&request.encode()).unwrap();
        assert_eq!(decoded.version(), 99);
        assert_eq!(Response::cleared().version(), PROTOCOL_VERSION);
    }

    #[test]
    fn mismatch_error_names_the_supported_version() {
        let error = ServiceError::version_mismatch(7);
        assert_eq!(error.kind, ErrorKind::Protocol);
        assert!(error.message.contains("version 7"));
        assert!(error.message.contains(&PROTOCOL_VERSION.to_string()));
    }

    #[test]
    fn service_error_renders_like_engine_error() {
        let engine_err = EngineError::Runtime("store exhausted".into());
        let service_err = ServiceError::from(&engine_err);
        assert_eq!(service_err.to_string(), engine_err.to_string());
    }

    #[test]
    fn malformed_wire_data_is_rejected_not_panicked() {
        for line in [
            "",
            "not json",
            "{}",
            r#"{"protocol_version":1}"#,
            r#"{"protocol_version":1,"type":"warp"}"#,
            r#"{"type":"stats"}"#,
            r#"{"protocol_version":1,"type":"process","source":"x"}"#,
        ] {
            let err = Request::decode(line).unwrap_err();
            assert_eq!(err.kind, ErrorKind::Malformed, "{line:?}");
        }
    }
}
