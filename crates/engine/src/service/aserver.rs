//! The event-driven serving strategy: one silio/epoll event loop
//! multiplexing every connection, plus a small worker pool executing
//! requests against the shared service.
//!
//! ```text
//!                    ┌────────────── readiness ──────────────┐
//!   clients ──────▶  │  event loop (1 thread)                │
//!     accept/read    │   · accepts, frames lines (LineConn)  │
//!                    │   · per-connection FIFO job queue     │
//!                    │   · flushes responses, backpressure   │
//!                    └───────▲──────────────────┬────────────┘
//!                    eventfd │ wakeup           │ jobs (condvar)
//!                    ┌───────┴──────────────────▼────────────┐
//!                    │  workers (N threads)                  │
//!                    │   · decode → version → Service::call  │
//!                    │   · push completion, wake the loop    │
//!                    └───────────────────────────────────────┘
//! ```
//!
//! Invariants the loop maintains:
//!
//! * **Protocol order** — at most one request per connection is in flight
//!   at a time; further complete lines wait in that connection's own queue,
//!   so responses always return in request order even though many
//!   connections execute concurrently on the pool.
//! * **Backpressure both ways** — a connection whose pending-line queue is
//!   full loses readable interest until the queue drains; a connection
//!   whose peer reads slowly keeps writable interest and bounded buffers,
//!   and blocks nothing else.
//! * **Cooperative shutdown** — a well-versioned shutdown request (or the
//!   external handle) flips the shared flag; the loop stops accepting,
//!   finishes in-flight work, flushes every queued response (bounded by a
//!   drain deadline), joins the pool, and exits so the socket file can be
//!   removed.
//!
//! Faulty clients cannot wedge the loop: malformed lines are answered like
//! any request, oversized newline-free floods and mid-request disconnects
//! tear down only their own connection.

use super::server::{handle_line, LineOutcome, Listener, ServerCounters};
use super::{Addr, Service};
use silio::{Events, Interest, LineConn, Poll, Token, Waker};
use silobs::Gauge;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

const LISTENER: Token = Token(0);
const WAKER: Token = Token(1);
/// Connection ids start above the fixed tokens.
const FIRST_CONNECTION: usize = 2;

/// How long the loop parks per poll; also the cadence at which it notices
/// an externally flipped shutdown flag if no traffic wakes it first.
const POLL_TIMEOUT: Duration = Duration::from_millis(100);

/// Read-side backpressure: a connection may queue at most this many
/// complete-but-unserved lines before the loop stops reading from it.
const MAX_PENDING_LINES: usize = 128;

/// How long a shutting-down loop keeps flushing queued responses before
/// closing connections that will not drain.
const DRAIN_DEADLINE: Duration = Duration::from_secs(2);

/// One complete line parked in a connection's FIFO: the request id minted
/// when the loop framed it, and the tick it arrived (so the worker can
/// attribute the queueing delay as a `queue-wait` span).
struct PendingLine {
    id: u64,
    arrival_us: u64,
    line: String,
}

/// One request line waiting for a worker.
struct Job {
    connection: usize,
    pending: PendingLine,
}

/// One finished request on its way back to the loop.
struct Completion {
    connection: usize,
    line: String,
    shutdown: bool,
}

/// The loop ↔ pool exchange: jobs flow down via a condvar queue,
/// completions flow back via a vector plus an eventfd wakeup.
struct Exchange {
    jobs: Mutex<JobQueue>,
    ready: Condvar,
    completions: Mutex<Vec<Completion>>,
    waker: Waker,
    /// Mirrors `jobs.queue.len()` for the metrics registry
    /// (`server.queue_depth`): how many ready jobs await a free worker.
    queue_depth: Gauge,
}

struct JobQueue {
    queue: VecDeque<Job>,
    closed: bool,
}

impl Exchange {
    fn submit(&self, job: Job) {
        self.jobs.lock().unwrap().queue.push_back(job);
        self.queue_depth.add(1);
        self.ready.notify_one();
    }

    fn close(&self) {
        self.jobs.lock().unwrap().closed = true;
        self.ready.notify_all();
    }

    /// Worker side: block for the next job; `None` means exit.
    fn next_job(&self) -> Option<Job> {
        let mut jobs = self.jobs.lock().unwrap();
        loop {
            if let Some(job) = jobs.queue.pop_front() {
                self.queue_depth.sub(1);
                return Some(job);
            }
            if jobs.closed {
                return None;
            }
            jobs = self.ready.wait(jobs).unwrap();
        }
    }

    fn complete(&self, completion: Completion) {
        self.completions.lock().unwrap().push(completion);
        // A dead loop cannot be woken; the worker is exiting anyway.
        let _ = self.waker.wake();
    }

    fn take_completions(&self) -> Vec<Completion> {
        std::mem::take(&mut *self.completions.lock().unwrap())
    }
}

/// Per-connection state owned by the event loop.
struct Connection {
    conn: LineConn,
    /// Complete lines waiting their turn (FIFO per connection).
    pending: VecDeque<PendingLine>,
    /// Whether a worker currently holds this connection's line.
    inflight: bool,
    /// The peer closed its write side; serve what is queued, then close.
    eof: bool,
    /// The interest currently registered with the poll.
    interest: Interest,
}

impl Connection {
    /// The interest this connection's state wants right now.
    fn desired_interest(&self) -> Interest {
        let mut interest = Interest::NONE;
        if !self.eof && self.pending.len() < MAX_PENDING_LINES {
            interest = interest.with(Interest::READABLE);
        }
        if self.conn.wants_write() {
            interest = interest.with(Interest::WRITABLE);
        }
        interest
    }

    /// Nothing left to read, serve, or flush: safe to close.
    fn finished(&self) -> bool {
        self.eof && !self.inflight && self.pending.is_empty() && !self.conn.wants_write()
    }
}

fn pool_size(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(2, 8)
}

/// Serve the bound listener with the event loop until shut down.
pub(crate) fn serve(
    listener: Listener,
    service: Arc<dyn Service + Send + Sync>,
    shutdown: Arc<AtomicBool>,
    addr: Addr,
    options: super::server::ServerOptions,
    counters: Arc<ServerCounters>,
) {
    let listener = match listener {
        Listener::Unix(listener, _) => silio::Listener::from_unix(listener),
        Listener::Tcp(listener) => silio::Listener::from_tcp(listener),
    };
    let setup = listener.and_then(|listener| {
        let poll = Poll::new()?;
        let exchange = Arc::new(Exchange {
            jobs: Mutex::new(JobQueue {
                queue: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            completions: Mutex::new(Vec::new()),
            waker: Waker::new()?,
            queue_depth: counters.queue_depth(),
        });
        poll.register(&listener, LISTENER, Interest::READABLE)?;
        poll.register(&exchange.waker, WAKER, Interest::READABLE)?;
        Ok((listener, poll, exchange))
    });
    let (listener, poll, exchange) = match setup {
        Ok(ready) => ready,
        Err(e) => {
            // Readiness plumbing itself failed (fd exhaustion); nothing to
            // serve with.  The daemon exits rather than busy-looping.
            eprintln!("sild: async server setup failed on {addr}: {e}");
            return;
        }
    };

    // The worker pool: each thread runs requests to completion and wakes
    // the loop through the shared eventfd.
    let workers: Vec<_> = (0..pool_size(options.workers))
        .map(|_| {
            let exchange = exchange.clone();
            let service = service.clone();
            let counters = counters.clone();
            std::thread::spawn(move || {
                while let Some(job) = exchange.next_job() {
                    let PendingLine {
                        id,
                        arrival_us,
                        line,
                    } = job.pending;
                    // The interval between framing and pickup is the
                    // request's queueing delay — the signal an autoscaler
                    // watches (alongside the queue-depth gauge).
                    counters
                        .tracer()
                        .record(id, "queue-wait", arrival_us, silobs::ticks());
                    let (line, stop) = match handle_line(service.as_ref(), &counters, id, &line) {
                        LineOutcome::Respond(line) => (line, false),
                        LineOutcome::ShutdownAfter(line) => (line, true),
                    };
                    exchange.complete(Completion {
                        connection: job.connection,
                        line,
                        shutdown: stop,
                    });
                }
            })
        })
        .collect();

    run_loop(&listener, &poll, &exchange, &shutdown, &counters);

    exchange.close();
    for worker in workers {
        let _ = worker.join();
    }
}

fn run_loop(
    listener: &silio::Listener,
    poll: &Poll,
    exchange: &Exchange,
    shutdown: &AtomicBool,
    counters: &ServerCounters,
) {
    let mut events = Events::with_capacity(1024);
    let mut connections: HashMap<usize, Connection> = HashMap::new();
    let mut next_id = FIRST_CONNECTION;
    let mut inflight_total = 0usize;
    // Set once shutdown begins: accepting stops, queued work drains until
    // everything flushed or the deadline passes.
    let mut drain_deadline: Option<Instant> = None;

    loop {
        if shutdown.load(Ordering::SeqCst) && drain_deadline.is_none() {
            drain_deadline = Some(Instant::now() + DRAIN_DEADLINE);
            let _ = poll.deregister(listener);
        }

        if let Some(deadline) = drain_deadline {
            let idle = inflight_total == 0 && connections.values().all(|c| !c.conn.wants_write());
            if idle || Instant::now() >= deadline {
                break;
            }
        }

        if poll.poll(&mut events, Some(POLL_TIMEOUT)).is_err() {
            // Only unrecoverable selector failures reach here (EINTR is
            // retried inside); treat as shutdown.
            break;
        }

        let mut touched: Vec<usize> = Vec::new();
        for event in events.iter() {
            match event.token() {
                LISTENER => {
                    if drain_deadline.is_some() {
                        continue;
                    }
                    loop {
                        let stream = match listener.accept() {
                            Ok(Some(stream)) => stream,
                            Ok(None) => break, // backlog drained
                            Err(_) => {
                                // Transient accept failures (e.g. fd
                                // exhaustion under load) leave the backlog
                                // readable, so the level-triggered poll
                                // would re-fire instantly; back off briefly
                                // rather than spin a core (mirrors the
                                // threaded server).
                                std::thread::sleep(std::time::Duration::from_millis(20));
                                break;
                            }
                        };
                        let id = next_id;
                        next_id += 1;
                        let connection = Connection {
                            conn: LineConn::new(stream),
                            pending: VecDeque::new(),
                            inflight: false,
                            eof: false,
                            interest: Interest::READABLE,
                        };
                        if poll
                            .register(connection.conn.stream(), Token(id), Interest::READABLE)
                            .is_ok()
                        {
                            counters.connection_opened();
                            connections.insert(id, connection);
                        }
                    }
                }
                WAKER => {
                    let _ = exchange.waker.drain();
                }
                Token(id) => {
                    let Some(connection) = connections.get_mut(&id) else {
                        continue;
                    };
                    let mut failed = false;
                    if event.is_writable() {
                        failed |= connection.conn.write_ready().is_err();
                    }
                    if event.is_readable() && !failed {
                        match connection.conn.read_ready() {
                            Ok(drained) => {
                                connection.eof |= drained.eof;
                                for line in drained.lines {
                                    if !line.trim().is_empty() {
                                        // Mint the request id and stamp the
                                        // arrival at framing time, so
                                        // queue-wait covers the full park.
                                        connection.pending.push_back(PendingLine {
                                            id: counters.tracer().mint(),
                                            arrival_us: silobs::ticks(),
                                            line,
                                        });
                                        counters.pending_lines().add(1);
                                    }
                                }
                            }
                            Err(_) => failed = true,
                        }
                    }
                    if failed || (event.is_error_or_hangup() && connection.finished()) {
                        // A failed connection dies with its queue; a
                        // cleanly finished one just closes.
                        close_connection(poll, counters, &mut connections, id, &mut inflight_total);
                        continue;
                    }
                    touched.push(id);
                }
            }
        }

        // Completions: deliver responses, then promote each connection's
        // next pending line to the pool (per-connection FIFO).
        for completion in exchange.take_completions() {
            if completion.shutdown {
                // Honored even if the requester vanished before reading
                // the acknowledgement.
                shutdown.store(true, Ordering::SeqCst);
            }
            let Some(connection) = connections.get_mut(&completion.connection) else {
                // The client vanished mid-request: its close already
                // settled the inflight count; drop the response.
                continue;
            };
            connection.inflight = false;
            inflight_total = inflight_total.saturating_sub(1);
            if connection.conn.enqueue_line(&completion.line).is_err() {
                close_connection(
                    poll,
                    counters,
                    &mut connections,
                    completion.connection,
                    &mut inflight_total,
                );
                continue;
            }
            touched.push(completion.connection);
        }

        // Submit work and settle interests for every connection touched
        // this round.
        for id in touched {
            let Some(connection) = connections.get_mut(&id) else {
                continue;
            };
            if !connection.inflight && drain_deadline.is_none() {
                if let Some(pending) = connection.pending.pop_front() {
                    counters.pending_lines().sub(1);
                    connection.inflight = true;
                    inflight_total += 1;
                    exchange.submit(Job {
                        connection: id,
                        pending,
                    });
                }
            }
            if connection.finished() {
                close_connection(poll, counters, &mut connections, id, &mut inflight_total);
                continue;
            }
            let desired = connection.desired_interest();
            if desired != connection.interest {
                if poll
                    .reregister(connection.conn.stream(), Token(id), desired)
                    .is_err()
                {
                    close_connection(poll, counters, &mut connections, id, &mut inflight_total);
                    continue;
                }
                if let Some(connection) = connections.get_mut(&id) {
                    connection.interest = desired;
                }
            }
        }
    }

    for (_, connection) in connections.drain() {
        counters
            .pending_lines()
            .sub(connection.pending.len() as i64);
        let _ = poll.deregister(connection.conn.stream());
        counters.connection_closed();
    }
}

fn close_connection(
    poll: &Poll,
    counters: &ServerCounters,
    connections: &mut HashMap<usize, Connection>,
    id: usize,
    inflight_total: &mut usize,
) {
    if let Some(connection) = connections.remove(&id) {
        if connection.inflight {
            // Its worker will still complete; the completion finds no
            // connection and is dropped, but the global count must not
            // leak or drain-on-shutdown would stall.
            *inflight_total = inflight_total.saturating_sub(1);
        }
        // A dying connection's unserved lines leave the pending gauge with
        // it, or the level would drift upward over daemon lifetime.
        counters
            .pending_lines()
            .sub(connection.pending.len() as i64);
        let _ = poll.deregister(connection.conn.stream());
        counters.connection_closed();
    }
}
