//! The thread-per-connection serving strategy: a blocking accept loop that
//! hands each connection its own thread reading lines with a `BufReader`.
//!
//! This is the portable default behind `serve_listener`.
//! Its simplicity is the point — no readiness machinery, no shared queues
//! — and its cost is one stack per connected client, which is exactly the
//! scaling wall the async strategy (`aserver.rs`) exists to remove.

use super::server::{handle_line, wake, write_response, LineOutcome, Listener, ServerCounters};
use super::{Addr, Service};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

/// Accept connections until shut down, one serving thread each.
pub(crate) fn serve(
    listener: Listener,
    service: Arc<dyn Service + Send + Sync>,
    shutdown: Arc<AtomicBool>,
    addr: Addr,
    counters: Arc<ServerCounters>,
) {
    loop {
        let stream = match &listener {
            Listener::Unix(listener, _) => listener.accept().map(|(s, _)| Stream::Unix(s)),
            Listener::Tcp(listener) => listener.accept().map(|(s, _)| Stream::Tcp(s)),
        };
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else {
            // Transient accept failures (e.g. fd exhaustion under load)
            // must not spin a core; back off briefly.
            std::thread::sleep(std::time::Duration::from_millis(20));
            continue;
        };
        counters.connection_opened();
        let service = service.clone();
        let shutdown = shutdown.clone();
        let addr = addr.clone();
        let counters = counters.clone();
        std::thread::spawn(move || {
            serve_connection(stream, service, shutdown, addr, &counters);
            counters.connection_closed();
        });
    }
}

fn serve_connection(
    stream: Stream,
    service: Arc<dyn Service + Send + Sync>,
    shutdown: Arc<AtomicBool>,
    addr: Addr,
    counters: &ServerCounters,
) {
    let (reader, mut writer): (Box<dyn std::io::Read>, Box<dyn Write>) = match stream {
        Stream::Unix(s) => match s.try_clone() {
            Ok(clone) => (Box::new(clone), Box::new(s)),
            Err(_) => return,
        },
        Stream::Tcp(s) => match s.try_clone() {
            Ok(clone) => (Box::new(clone), Box::new(s)),
            Err(_) => return,
        },
    };
    let mut reader = BufReader::new(reader);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return, // client hung up
            Ok(_) => {}
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        // The request id is minted the moment the line is framed, so its
        // spans cover everything that happens to it from here on.
        let id = counters.tracer().mint();
        match handle_line(service.as_ref(), counters, id, trimmed) {
            LineOutcome::Respond(response) => {
                if write_response(&mut writer, &response).is_err() {
                    return;
                }
            }
            LineOutcome::ShutdownAfter(response) => {
                // Acknowledge, then stop the daemon: flag + self-dial
                // wakes the accept loop.
                let _ = write_response(&mut writer, &response);
                shutdown.store(true, Ordering::SeqCst);
                wake(&addr);
                return;
            }
        }
    }
}
