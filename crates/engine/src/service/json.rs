//! A self-contained JSON value module: serializer plus a small
//! recursive-descent parser.
//!
//! The environment has no serde, and the old hand-rolled `to_json` in
//! `report.rs` was write-only — nothing could read its output back.  The
//! wire protocol needs *round-trippable* encoding: a report encoded on the
//! daemon must decode on the client into the identical report, and encoding
//! it again must reproduce the identical bytes (that is what makes
//! `silp --connect` byte-identical to `silp --in-process`).
//!
//! Representation choices that make the round trip exact:
//!
//! * objects are ordered `Vec<(String, Json)>`, not maps — field order is
//!   part of the encoding and survives parse → encode;
//! * integers and floats are distinct variants: `1` parses as [`Json::Int`]
//!   and re-encodes as `1`, while floats always encode with a `.` or
//!   exponent (`2.0`, never `2`) so they parse back as [`Json::Float`];
//! * float text is Rust's shortest round-trip representation, so
//!   `parse(encode(f)) == f` bit-for-bit for every finite `f`;
//! * every control character (U+0000–U+001F) is escaped on output and every
//!   escape (including `\uXXXX` surrogate pairs) is understood on input.

use std::fmt::Write as _;

/// A JSON value.  Object member order is preserved.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// A number written without fraction or exponent.
    Int(i64),
    /// A number written with a fraction or exponent; always re-encoded with
    /// one so the int/float distinction survives a round trip.
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs, preserving their order.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Look up a member of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Numeric value as a float (ints coerce).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Render to a compact JSON string (no whitespace).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(f) => encode_float(*f, out),
            Json::Str(s) => encode_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.encode_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_str(key, out);
                    out.push(':');
                    value.encode_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse one JSON value from `src` (trailing garbage is an error).
    pub fn parse(src: &str) -> Result<Json, JsonError> {
        let mut parser = Parser {
            bytes: src.as_bytes(),
            pos: 0,
            depth: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.err("trailing characters after the value"));
        }
        Ok(value)
    }
}

/// Floats always carry a `.` or an exponent so they never collide with the
/// integer syntax: `2.0` encodes as `"2.0"`, not `"2"`.  The digits are
/// Rust's shortest representation that parses back to the same bits.
fn encode_float(f: f64, out: &mut String) {
    if !f.is_finite() {
        // JSON has no NaN/Infinity; reports never produce them.
        out.push_str("null");
        return;
    }
    let start = out.len();
    let _ = write!(out, "{f}");
    if !out[start..].contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

/// Write `s` as a JSON string literal, escaping `"`/`\` and *every* control
/// character U+0000–U+001F (the common ones by name, the rest as `\u00XX`).
fn encode_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Escape a string for embedding in a JSON string literal (without the
/// surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    encode_str(s, &mut out);
    out.pop();
    out.remove(0);
    out
}

/// Where and why a parse failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Maximum container nesting the parser accepts.  The protocol's own
/// messages nest 4–5 levels; the bound exists so a hostile wire line of
/// 100k `[`s errors out instead of overflowing the connection thread's
/// stack and aborting the whole daemon.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn descend(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("nesting deeper than 128 levels"));
        }
        Ok(())
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{text}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.descend()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.descend()?;
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 2;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let scalar = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(scalar)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(unit)
                                    .ok_or_else(|| self.err("lone surrogate escape"))?
                            };
                            out.push(c);
                            continue; // hex4 advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let digits = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(digits).map_err(|_| self.err("invalid \\u escape"))?;
        let unit = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(unit)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| self.err("integer out of range"))
        }
    }
}

/// Encode a `u64` fingerprint/digest the way the reports always have: a
/// 16-digit lowercase hex string.
pub fn hex64(value: u64) -> Json {
    Json::Str(format!("{value:016x}"))
}

/// Decode a [`hex64`]-encoded value.
pub fn parse_hex64(value: &Json) -> Result<u64, String> {
    let s = value.as_str().ok_or("expected a hex string")?;
    u64::from_str_radix(s, 16).map_err(|e| format!("invalid hex u64 {s:?}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for src in [
            "null", "true", "false", "0", "-17", "42", "1.5", "-0.25", "1e3",
        ] {
            let value = Json::parse(src).unwrap();
            let encoded = value.encode();
            assert_eq!(Json::parse(&encoded).unwrap(), value, "{src}");
            assert_eq!(Json::parse(&encoded).unwrap().encode(), encoded, "{src}");
        }
    }

    #[test]
    fn ints_and_floats_stay_distinct() {
        assert_eq!(Json::parse("2").unwrap(), Json::Int(2));
        assert_eq!(Json::parse("2.0").unwrap(), Json::Float(2.0));
        assert_eq!(Json::Float(2.0).encode(), "2.0");
        assert_eq!(Json::Int(2).encode(), "2");
        assert_eq!(Json::parse("1e3").unwrap().encode(), "1000.0");
    }

    #[test]
    fn every_control_character_escapes_and_parses() {
        for code in 0u32..0x20 {
            let c = char::from_u32(code).unwrap();
            let original = Json::Str(format!("a{c}b"));
            let encoded = original.encode();
            assert!(
                !encoded.bytes().any(|b| b < 0x20),
                "raw control byte {code:#x} leaked into {encoded:?}"
            );
            assert_eq!(Json::parse(&encoded).unwrap(), original, "U+{code:04X}");
        }
    }

    #[test]
    fn named_escapes_are_used() {
        assert_eq!(
            Json::Str("\u{08}\u{0c}\n\r\t\"\\".into()).encode(),
            r#""\b\f\n\r\t\"\\""#
        );
    }

    #[test]
    fn unicode_and_surrogate_escapes_parse() {
        assert_eq!(Json::parse(r#""Aé😀""#).unwrap(), Json::Str("Aé😀".into()));
        assert!(Json::parse(r#""\ud83d""#).is_err(), "lone high surrogate");
        assert!(Json::parse(r#""\ude00""#).is_err(), "lone low surrogate");
    }

    #[test]
    fn object_field_order_is_preserved() {
        let src = r#"{"b":1,"a":[true,null],"c":{"x":"y"}}"#;
        let value = Json::parse(src).unwrap();
        assert_eq!(value.encode(), src);
        assert_eq!(value.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(
            value.get("c").unwrap().get("x").unwrap().as_str(),
            Some("y")
        );
    }

    #[test]
    fn whitespace_is_tolerated_but_not_reproduced() {
        let value = Json::parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(value.encode(), r#"{"a":[1,2]}"#);
    }

    #[test]
    fn malformed_inputs_error_with_position() {
        for src in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "\"\u{1}\"",
            "1.2.3",
            "[] []",
        ] {
            let err = Json::parse(src).unwrap_err();
            assert!(!err.message.is_empty(), "{src:?} -> {err}");
        }
        assert_eq!(Json::parse("[1,]").unwrap_err().offset, 3);
    }

    #[test]
    fn float_text_round_trips_exactly() {
        for f in [0.1, 1.0 / 3.0, 12345.6789, 2.0, 1e-8, f64::MAX] {
            let encoded = Json::Float(f).encode();
            match Json::parse(&encoded).unwrap() {
                Json::Float(back) => assert_eq!(back.to_bits(), f.to_bits(), "{encoded}"),
                other => panic!("{encoded} parsed as {other:?}"),
            }
        }
    }

    #[test]
    fn hostile_nesting_errors_instead_of_overflowing() {
        let deep_arrays = "[".repeat(100_000);
        assert!(Json::parse(&deep_arrays).is_err());
        let deep_objects = "{\"k\":".repeat(100_000);
        assert!(Json::parse(&deep_objects).is_err());
        // 100 levels (within the bound) still parse, and siblings do not
        // accumulate depth.
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(Json::parse(&ok).is_ok());
        let wide = format!("[{}]", vec!["[1]"; 500].join(","));
        assert!(Json::parse(&wide).is_ok(), "500 sibling arrays are shallow");
    }

    #[test]
    fn hex64_round_trips() {
        for v in [0u64, 1, 0xabcdef0123456789, u64::MAX] {
            assert_eq!(parse_hex64(&hex64(v)).unwrap(), v);
        }
    }

    #[test]
    fn escape_helper_matches_encoder() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
