//! The unified, content-addressed **summary store** — the one cache layer
//! behind every engine.
//!
//! Hendren & Nicolau's interprocedural path-matrix analysis is dominated
//! by re-deriving per-procedure/SCC summaries, which is exactly what this
//! store memoizes.  It replaces the engine's former trio of private caches
//! (a whole-program `ContentCache`, an SCC-summary `ContentCache`, and a
//! cone-keyed `ProcedureCache`) with one coherent abstraction:
//!
//! * **content-addressed** — every key is a stable 64-bit fingerprint of
//!   normalized program content (`sil_lang::hash`), so identical content
//!   hits regardless of which client, connection, or shard produced it;
//! * **typed namespaces** — [`Namespace::Program`] (whole
//!   `AnalysisResult`s), [`Namespace::SccSummary`] (per-SCC argument-mode
//!   summaries keyed by cone fingerprint), and [`Namespace::WalkRecord`]
//!   (retained interprocedural body walks keyed by cone fingerprint, the
//!   raw material of incremental re-analysis) each get their own capacity,
//!   eviction policy, and counters;
//! * **internally sharded** — each namespace is lock-striped
//!   ([`NamespaceCache`]), so the store scales across however many engines
//!   share it without a global lock;
//! * **stats-driven adaptive eviction** — besides fixed LRU/LFU, the
//!   [`EvictionPolicy::Adaptive`] policy watches its own live
//!   [`CacheStats`]-derived regret counters and switches LRU↔LFU to match
//!   the observed traffic (see [`policy`]).
//!
//! Engines are *views* over an `Arc<SummaryStore>`: they read and write
//! the shared namespaces and keep only their own per-view hit/miss
//! counters.  A `ShardedService` hands every shard the same store, which
//! is what makes a cone analyzed on shard A a warm hit on shard B.

pub mod durable;
pub mod namespace;
pub mod policy;
pub mod segment;

pub use crate::peer::{PeerConfig, PeerRing, PeerStats};
pub use durable::{DiskStats, DurableConfig, DurableTier, NS_PROGRAM, NS_SUMMARY};
pub use namespace::{NamespaceCache, NamespaceStats, DEFAULT_STRIPES};
pub use policy::{
    AdaptConfig, AdaptiveController, CacheStats, EvictionPolicy, PolicyChoice,
    ADAPT_SWITCH_THRESHOLD, ADAPT_WINDOW,
};

use crate::AnalyzedProgram;
use sil_analysis::{ProcSummary, WalkRecord};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// The typed namespaces of the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Namespace {
    /// Whole-program analysis results, keyed by program fingerprint.
    Program,
    /// Per-SCC argument-mode summaries, keyed by cone fingerprint.
    SccSummary,
    /// Retained interprocedural body walks, keyed by cone fingerprint.
    WalkRecord,
}

impl Namespace {
    /// Every namespace, in reporting order.
    pub const ALL: [Namespace; 3] = [
        Namespace::Program,
        Namespace::SccSummary,
        Namespace::WalkRecord,
    ];

    /// Stable lowercase name (wire format and CLI tables).
    pub fn name(self) -> &'static str {
        match self {
            Namespace::Program => "programs",
            Namespace::SccSummary => "summaries",
            Namespace::WalkRecord => "walks",
        }
    }
}

/// Store construction parameters: per-namespace capacity and eviction
/// policy, plus the lock-stripe count shared by all namespaces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreConfig {
    /// Capacity of the whole-program namespace.
    pub program_capacity: usize,
    /// Capacity of the per-SCC summary namespace.
    pub summary_capacity: usize,
    /// Capacity (in cones) of the walk-record namespace.
    pub walk_capacity: usize,
    /// Eviction policy of the whole-program namespace.
    pub program_policy: EvictionPolicy,
    /// Eviction policy of the per-SCC summary namespace.
    pub summary_policy: EvictionPolicy,
    /// Eviction policy of the walk-record namespace.
    pub walk_policy: EvictionPolicy,
    /// Adaptation window/threshold of the whole-program namespace.
    pub program_adapt: AdaptConfig,
    /// Adaptation window/threshold of the per-SCC summary namespace.
    pub summary_adapt: AdaptConfig,
    /// Adaptation window/threshold of the walk-record namespace.
    pub walk_adapt: AdaptConfig,
    /// Lock stripes per namespace (clamped to each namespace's capacity).
    pub stripes: usize,
    /// Durable disk tier under the in-memory namespaces (`None` =
    /// memory-only, the historical behavior).
    pub durable: Option<DurableConfig>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            program_capacity: 256,
            summary_capacity: 1024,
            walk_capacity: 512,
            program_policy: EvictionPolicy::default(),
            summary_policy: EvictionPolicy::default(),
            walk_policy: EvictionPolicy::default(),
            program_adapt: AdaptConfig::default(),
            summary_adapt: AdaptConfig::default(),
            walk_adapt: AdaptConfig::default(),
            stripes: DEFAULT_STRIPES,
            durable: None,
        }
    }
}

impl StoreConfig {
    /// One policy for every namespace.
    pub fn with_policy(mut self, policy: EvictionPolicy) -> Self {
        self.program_policy = policy;
        self.summary_policy = policy;
        self.walk_policy = policy;
        self
    }

    /// One adaptation window/threshold for every namespace.
    pub fn with_adapt(mut self, adapt: AdaptConfig) -> Self {
        self.program_adapt = adapt;
        self.summary_adapt = adapt;
        self.walk_adapt = adapt;
        self
    }

    /// Override the lock-stripe count.
    pub fn with_stripes(mut self, stripes: usize) -> Self {
        self.stripes = stripes;
        self
    }

    /// Put a durable disk tier under the in-memory namespaces.
    pub fn with_durable(mut self, durable: Option<DurableConfig>) -> Self {
        self.durable = durable;
        self
    }
}

/// Counter snapshot of the whole store: one [`NamespaceStats`] per typed
/// namespace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreStats {
    /// The whole-program namespace.
    pub programs: NamespaceStats,
    /// The per-SCC summary namespace.
    pub summaries: NamespaceStats,
    /// The walk-record namespace.
    pub walks: NamespaceStats,
    /// The durable disk tier, when one is configured.
    pub disk: Option<DiskStats>,
    /// The peering tier, when this store fetches from or serves peers.
    pub peer: Option<PeerStats>,
}

impl StoreStats {
    /// The snapshot of one namespace, by tag.
    pub fn namespace(&self, namespace: Namespace) -> &NamespaceStats {
        match namespace {
            Namespace::Program => &self.programs,
            Namespace::SccSummary => &self.summaries,
            Namespace::WalkRecord => &self.walks,
        }
    }
}

/// Retained per-SCC argument-mode summaries (the value type of
/// [`Namespace::SccSummary`]).
pub type SummaryTable = Arc<HashMap<String, ProcSummary>>;

/// Retained body walks of one cone (the value type of
/// [`Namespace::WalkRecord`]).
pub type WalkSet = Arc<Vec<Arc<WalkRecord>>>;

/// The unified content-addressed store.  One instance is shared (via
/// `Arc`) by every engine that should see the same summaries — all the
/// shards of a `ShardedService`, every `Session`, every connection of a
/// `sild` daemon.
#[derive(Debug)]
pub struct SummaryStore {
    config: StoreConfig,
    programs: NamespaceCache<Arc<AnalyzedProgram>>,
    summaries: NamespaceCache<SummaryTable>,
    walks: NamespaceCache<WalkSet>,
    /// The disk tier under `programs`/`summaries` (walk records are
    /// cheap-to-rebuild replay tapes and stay memory-only).
    durable: Option<DurableTier>,
    /// The peering tier under the disk tier — attached once, after
    /// construction, by the daemon that owns the ring (the store cannot
    /// hold it in `StoreConfig`: rings are live objects, not parameters).
    peer: OnceLock<Arc<PeerRing>>,
    /// Peer inventory/fetch requests this store answered.
    peer_serves: AtomicU64,
    /// Entry bytes this store served to fetching peers.
    peer_bytes_out: AtomicU64,
    /// Monotonic inventory generation: bumped on `clear()`, so peers can
    /// tell a truncated store's empty inventory from a stale snapshot.
    generation: AtomicU64,
}

impl Default for SummaryStore {
    fn default() -> Self {
        SummaryStore::new(StoreConfig::default())
    }
}

impl SummaryStore {
    /// A store with the given per-namespace capacities and policies.
    ///
    /// Construction stays infallible: when the configured durable tier
    /// cannot be opened (unwritable directory, I/O error) the store logs
    /// it and runs memory-only rather than refusing to start.
    pub fn new(config: StoreConfig) -> SummaryStore {
        let durable = config.durable.clone().and_then(|durable| {
            DurableTier::open(durable)
                .map_err(|e| eprintln!("sil durable store: disabled ({e})"))
                .ok()
        });
        SummaryStore {
            durable,
            peer: OnceLock::new(),
            peer_serves: AtomicU64::new(0),
            peer_bytes_out: AtomicU64::new(0),
            generation: AtomicU64::new(0),
            programs: NamespaceCache::with_config(
                config.program_capacity,
                config.program_policy,
                config.stripes,
                config.program_adapt,
            ),
            summaries: NamespaceCache::with_config(
                config.summary_capacity,
                config.summary_policy,
                config.stripes,
                config.summary_adapt,
            ),
            walks: NamespaceCache::with_config(
                config.walk_capacity,
                config.walk_policy,
                config.stripes,
                config.walk_adapt,
            ),
            config,
        }
    }

    /// A store behind an `Arc`, ready to hand to engines.
    pub fn shared(config: StoreConfig) -> Arc<SummaryStore> {
        Arc::new(SummaryStore::new(config))
    }

    /// The construction parameters.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// The whole-program namespace.
    pub fn programs(&self) -> &NamespaceCache<Arc<AnalyzedProgram>> {
        &self.programs
    }

    /// The per-SCC summary namespace.
    pub fn summaries(&self) -> &NamespaceCache<SummaryTable> {
        &self.summaries
    }

    /// The walk-record namespace.
    pub fn walks(&self) -> &NamespaceCache<WalkSet> {
        &self.walks
    }

    /// The durable disk tier, when one is configured and healthy.
    pub fn durable(&self) -> Option<&DurableTier> {
        self.durable.as_ref()
    }

    /// Attach a peer ring as the tier under the disk tier.  At most one
    /// ring per store; a second attach is ignored.
    pub fn attach_peers(&self, ring: Arc<PeerRing>) {
        let _ = self.peer.set(ring);
    }

    /// The attached peer ring, if any.
    pub fn peers(&self) -> Option<&Arc<PeerRing>> {
        self.peer.get()
    }

    /// The current inventory generation (bumped by [`SummaryStore::clear`]).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// The inventory this store advertises to peers: generation plus the
    /// sorted resident fingerprints of the two fetchable namespaces (walk
    /// records are derived data and are never served).
    pub fn peer_inventory(&self) -> (u64, Vec<u64>, Vec<u64>) {
        self.peer_serves.fetch_add(1, Ordering::Relaxed);
        (
            self.generation(),
            self.programs.keys(),
            self.summaries.keys(),
        )
    }

    /// Serve one whole-program entry to a fetching peer, as the same
    /// verifiable codec document the durable tier persists.  Memory first
    /// (encoding on demand), then disk; never recomputes.
    pub fn peer_program_body(&self, fingerprint: u64) -> Option<Vec<u8>> {
        self.peer_serves.fetch_add(1, Ordering::Relaxed);
        let body = match self.programs.peek(fingerprint) {
            Some(entry) => Some(durable::codec::encode_program(&entry)),
            None => self
                .durable
                .as_ref()
                .and_then(|tier| tier.get(NS_PROGRAM, fingerprint)),
        }?;
        self.peer_bytes_out
            .fetch_add(body.len() as u64, Ordering::Relaxed);
        Some(body)
    }

    /// Serve one per-SCC summary table to a fetching peer (see
    /// [`SummaryStore::peer_program_body`]).
    pub fn peer_summary_body(&self, cone: u64) -> Option<Vec<u8>> {
        self.peer_serves.fetch_add(1, Ordering::Relaxed);
        let body = match self.summaries.peek(cone) {
            Some(table) => Some(durable::codec::encode_summaries(&table, cone)),
            None => self
                .durable
                .as_ref()
                .and_then(|tier| tier.get(NS_SUMMARY, cone)),
        }?;
        self.peer_bytes_out
            .fetch_add(body.len() as u64, Ordering::Relaxed);
        Some(body)
    }

    /// Tiered whole-program lookup: the in-memory namespace first, then
    /// the disk tier, then a verified peer fetch — each lower tier's hit
    /// is promoted into the tiers above it.
    pub fn lookup_program(&self, fingerprint: u64) -> Option<Arc<AnalyzedProgram>> {
        if let Some(entry) = self.programs.get(fingerprint) {
            return Some(entry);
        }
        if let Some(tier) = &self.durable {
            if let Some(entry) = tier
                .get(NS_PROGRAM, fingerprint)
                .and_then(|body| durable::codec::decode_program(&body, fingerprint))
            {
                self.programs.insert(fingerprint, entry.clone());
                return Some(entry);
            }
        }
        let entry = self.peer.get()?.fetch_program(fingerprint)?;
        // `store_program` runs the verified entry through the normal
        // admission path: the namespace's live policy choice in memory,
        // plus an enqueued durable write when a disk tier exists.
        self.store_program(fingerprint, entry.clone());
        Some(entry)
    }

    /// Store a whole-program entry in both tiers (the disk write is
    /// enqueued behind the hot path).
    pub fn store_program(&self, fingerprint: u64, entry: Arc<AnalyzedProgram>) {
        self.programs.insert(fingerprint, entry.clone());
        if let Some(tier) = &self.durable {
            tier.note_policy(NS_PROGRAM, self.programs.current_choice());
            tier.put_program(fingerprint, entry);
        }
    }

    /// Tiered per-SCC summary lookup: memory, then disk, then a verified
    /// peer fetch, promoting lower-tier hits.
    pub fn lookup_summaries(&self, cone: u64) -> Option<SummaryTable> {
        if let Some(table) = self.summaries.get(cone) {
            return Some(table);
        }
        if let Some(tier) = &self.durable {
            if let Some(table) = tier
                .get(NS_SUMMARY, cone)
                .and_then(|body| durable::codec::decode_summaries(&body, cone))
            {
                self.summaries.insert(cone, table.clone());
                return Some(table);
            }
        }
        let table = self.peer.get()?.fetch_summaries(cone)?;
        self.store_summaries(cone, table.clone());
        Some(table)
    }

    /// Store a per-SCC summary table in both tiers.
    pub fn store_summaries(&self, cone: u64, table: SummaryTable) {
        self.summaries.insert(cone, table.clone());
        if let Some(tier) = &self.durable {
            tier.note_policy(NS_SUMMARY, self.summaries.current_choice());
            tier.put_summaries(cone, table);
        }
    }

    /// Block until every enqueued disk write is on disk.  A no-op for
    /// memory-only stores.
    pub fn flush(&self) {
        if let Some(tier) = &self.durable {
            tier.flush();
        }
    }

    /// Counter snapshot across all namespaces (aggregate + per stripe).
    pub fn stats(&self) -> StoreStats {
        let serves = self.peer_serves.load(Ordering::Relaxed);
        let bytes_out = self.peer_bytes_out.load(Ordering::Relaxed);
        StoreStats {
            programs: self.programs.stats(),
            summaries: self.summaries.stats(),
            walks: self.walks.stats(),
            disk: self.durable.as_ref().map(|tier| tier.stats()),
            peer: match self.peer.get() {
                Some(ring) => Some(ring.stats(serves, bytes_out)),
                // A serve-only daemon (no `--peer` flags of its own) has
                // no ring but still reports what it answered to peers.
                None if serves > 0 => Some(PeerStats {
                    serves,
                    bytes_out,
                    ..PeerStats::default()
                }),
                None => None,
            },
        }
    }

    /// Drop every entry in every namespace — and truncate the disk tier,
    /// so `ClearCaches` really does forget (the counters survive).  Bumps
    /// the inventory generation so peers discard stale advertisements.
    pub fn clear(&self) {
        self.programs.clear();
        self.summaries.clear();
        self.walks.clear();
        if let Some(tier) = &self.durable {
            tier.clear();
        }
        self.generation.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn namespaces_are_independent() {
        let store = SummaryStore::new(StoreConfig {
            program_capacity: 2,
            summary_capacity: 4,
            walk_capacity: 3,
            ..StoreConfig::default()
        });
        store.summaries().insert(1, Arc::new(HashMap::new()));
        store.walks().insert(1, Arc::new(Vec::new()));
        assert_eq!(store.programs().len(), 0);
        assert_eq!(store.summaries().len(), 1);
        assert_eq!(store.walks().len(), 1);
        assert_eq!(store.stats().summaries.entries, 1);
        assert_eq!(store.stats().namespace(Namespace::WalkRecord).entries, 1);
        assert_eq!(store.stats().programs.capacity, 2);

        store.clear();
        assert!(store.summaries().is_empty());
        assert!(store.walks().is_empty());
    }

    #[test]
    fn per_namespace_adapt_config_reaches_each_namespace() {
        let tuned = AdaptConfig {
            window: 32,
            threshold: 2,
        };
        let store = SummaryStore::new(StoreConfig {
            program_adapt: tuned,
            ..StoreConfig::default()
        });
        assert_eq!(store.programs().adapt_config(), tuned);
        assert_eq!(store.summaries().adapt_config(), AdaptConfig::default());
        assert_eq!(store.walks().adapt_config(), AdaptConfig::default());

        let all = SummaryStore::new(StoreConfig::default().with_adapt(tuned));
        assert_eq!(all.summaries().adapt_config(), tuned);
        assert_eq!(all.walks().adapt_config(), tuned);
    }

    #[test]
    fn namespace_names_are_stable() {
        let names: Vec<&str> = Namespace::ALL.iter().map(|n| n.name()).collect();
        assert_eq!(names, ["programs", "summaries", "walks"]);
    }
}
