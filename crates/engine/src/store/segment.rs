//! Append-only segment files — the on-disk unit of the durable store tier.
//!
//! A segment is a magic header followed by length-prefixed, checksummed
//! entries:
//!
//! ```text
//! "SILSEG1\n"                                    8-byte file magic
//! [u32 payload_len (LE)] [u64 fnv1a64 (LE)]      12-byte entry header
//! [u8 namespace] [u64 key (LE)] [body ...]       payload (payload_len bytes)
//! ...                                            next entry
//! ```
//!
//! The checksum covers the whole payload (namespace byte, key, body).
//! Recovery ([`scan`]) reads entries front to back and stops at the first
//! one that is torn (header or payload runs past end of file) or corrupt
//! (checksum mismatch): everything before that point is intact by
//! construction of an append-only log, everything after it is untrusted
//! and reported as dropped.  Scanning never panics on arbitrary bytes —
//! a flipped bit in a length field simply reads as a torn entry.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// First bytes of every segment file.
pub const MAGIC: &[u8; 8] = b"SILSEG1\n";

/// Bytes of the per-entry header: `u32` payload length + `u64` checksum.
pub const ENTRY_HEADER_BYTES: u64 = 12;

/// Bytes of the payload prefix: namespace byte + `u64` key.
pub const PAYLOAD_PREFIX_BYTES: u64 = 9;

/// FNV-1a 64 over `bytes` — the entry checksum.  Self-written (the
/// workspace takes no dependencies) and byte-order independent.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Where one intact entry lives inside a segment file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntryRef {
    /// Namespace tag byte (see `durable::NS_*`).
    pub namespace: u8,
    /// The content-addressed key.
    pub key: u64,
    /// Offset of the entry header from the start of the file.
    pub offset: u64,
    /// Length of the payload (namespace byte + key + body).
    pub payload_len: u32,
}

impl EntryRef {
    /// Total bytes the entry occupies on disk (header + payload).
    pub fn stored_bytes(&self) -> u64 {
        ENTRY_HEADER_BYTES + self.payload_len as u64
    }

    /// Length of the body (payload minus the namespace/key prefix).
    pub fn body_len(&self) -> u64 {
        (self.payload_len as u64).saturating_sub(PAYLOAD_PREFIX_BYTES)
    }
}

/// What a recovery scan of one segment found.
#[derive(Debug, Clone, Default)]
pub struct ScanReport {
    /// Every intact entry, in file order.
    pub entries: Vec<EntryRef>,
    /// Length of the valid prefix: the first byte past the last intact
    /// entry (the magic alone for an empty or unreadable-magic file).
    pub valid_len: u64,
    /// Bytes past the valid prefix that were discarded as torn/corrupt.
    pub dropped_bytes: u64,
    /// Whether anything had to be discarded.
    pub dropped: bool,
}

/// Scan a segment file, trusting only the intact prefix.
///
/// Returns the entries of the longest valid prefix and how many trailing
/// bytes (a torn final write, a corrupt entry and everything after it)
/// must be discarded.  A file whose magic does not match is treated as
/// having no valid prefix at all.
pub fn scan(path: &Path) -> io::Result<ScanReport> {
    let bytes = std::fs::read(path)?;
    let mut report = ScanReport::default();
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        report.dropped_bytes = bytes.len() as u64;
        report.dropped = report.dropped_bytes > 0;
        return Ok(report);
    }
    let mut offset = MAGIC.len() as u64;
    let total = bytes.len() as u64;
    while offset < total {
        let Some(entry) = read_entry_at(&bytes, offset) else {
            break;
        };
        offset += entry.stored_bytes();
        report.entries.push(entry);
    }
    report.valid_len = offset;
    report.dropped_bytes = total - offset;
    report.dropped = report.dropped_bytes > 0;
    Ok(report)
}

/// Decode and verify the entry starting at `offset`, or `None` when the
/// bytes there are torn or corrupt.
fn read_entry_at(bytes: &[u8], offset: u64) -> Option<EntryRef> {
    let start = usize::try_from(offset).ok()?;
    let header = bytes.get(start..start + ENTRY_HEADER_BYTES as usize)?;
    let payload_len = u32::from_le_bytes(header[0..4].try_into().unwrap());
    let stored = u64::from_le_bytes(header[4..12].try_into().unwrap());
    if (payload_len as u64) < PAYLOAD_PREFIX_BYTES {
        return None;
    }
    let payload_start = start + ENTRY_HEADER_BYTES as usize;
    let payload = bytes.get(payload_start..payload_start + payload_len as usize)?;
    if checksum(payload) != stored {
        return None;
    }
    Some(EntryRef {
        namespace: payload[0],
        key: u64::from_le_bytes(payload[1..9].try_into().unwrap()),
        offset,
        payload_len,
    })
}

/// Read back one entry's body, re-verifying its checksum (bytes may have
/// rotted since the recovery scan).  `None` when the entry no longer
/// verifies.
pub fn read_body(file: &mut File, entry: &EntryRef) -> io::Result<Option<Vec<u8>>> {
    file.seek(SeekFrom::Start(entry.offset))?;
    let mut buf = vec![0u8; entry.stored_bytes() as usize];
    if file.read_exact(&mut buf).is_err() {
        return Ok(None);
    }
    let stored = u64::from_le_bytes(buf[4..12].try_into().unwrap());
    let payload = &buf[ENTRY_HEADER_BYTES as usize..];
    if checksum(payload) != stored || payload[0] != entry.namespace {
        return Ok(None);
    }
    Ok(Some(payload[PAYLOAD_PREFIX_BYTES as usize..].to_vec()))
}

/// An open segment being appended to.
#[derive(Debug)]
pub struct SegmentWriter {
    file: File,
    path: PathBuf,
    len: u64,
}

impl SegmentWriter {
    /// Create a fresh segment (truncating anything at `path`) and write
    /// its magic.
    pub fn create(path: &Path) -> io::Result<SegmentWriter> {
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .read(true)
            .truncate(true)
            .open(path)?;
        file.write_all(MAGIC)?;
        Ok(SegmentWriter {
            file,
            path: path.to_path_buf(),
            len: MAGIC.len() as u64,
        })
    }

    /// Reopen an existing segment for appending, truncating it to
    /// `valid_len` first (recovery discards the torn/corrupt tail by
    /// physically cutting it off, so the next append extends an intact
    /// prefix).
    pub fn recover(path: &Path, valid_len: u64) -> io::Result<SegmentWriter> {
        let file = OpenOptions::new().write(true).read(true).open(path)?;
        file.set_len(valid_len.max(MAGIC.len() as u64))?;
        let mut writer = SegmentWriter {
            file,
            path: path.to_path_buf(),
            len: valid_len.max(MAGIC.len() as u64),
        };
        if valid_len < MAGIC.len() as u64 {
            // The magic itself was unreadable: rewrite it.
            writer.file.seek(SeekFrom::Start(0))?;
            writer.file.write_all(MAGIC)?;
        }
        writer.file.seek(SeekFrom::Start(writer.len))?;
        Ok(writer)
    }

    /// Append one entry, returning where it landed.
    pub fn append(&mut self, namespace: u8, key: u64, body: &[u8]) -> io::Result<EntryRef> {
        let payload_len = PAYLOAD_PREFIX_BYTES as usize + body.len();
        let payload_len_u32 = u32::try_from(payload_len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "entry body too large"))?;
        let mut payload = Vec::with_capacity(payload_len);
        payload.push(namespace);
        payload.extend_from_slice(&key.to_le_bytes());
        payload.extend_from_slice(body);
        let mut record = Vec::with_capacity(ENTRY_HEADER_BYTES as usize + payload_len);
        record.extend_from_slice(&payload_len_u32.to_le_bytes());
        record.extend_from_slice(&checksum(&payload).to_le_bytes());
        record.extend_from_slice(&payload);
        self.file.write_all(&record)?;
        let entry = EntryRef {
            namespace,
            key,
            offset: self.len,
            payload_len: payload_len_u32,
        };
        self.len += record.len() as u64;
        Ok(entry)
    }

    /// Force everything appended so far onto stable storage.
    pub fn sync(&self) -> io::Result<()> {
        self.file.sync_data()
    }

    /// Bytes written so far (magic included).
    pub fn len(&self) -> u64 {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len <= MAGIC.len() as u64
    }

    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_segment(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("silseg-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn round_trip_entries() {
        let path = temp_segment("round-trip.sil");
        let mut writer = SegmentWriter::create(&path).unwrap();
        let a = writer.append(0, 7, b"alpha").unwrap();
        let b = writer.append(1, 9, b"").unwrap();
        drop(writer);

        let report = scan(&path).unwrap();
        assert!(!report.dropped);
        assert_eq!(report.entries, vec![a, b]);
        let mut file = File::open(&path).unwrap();
        assert_eq!(read_body(&mut file, &a).unwrap().unwrap(), b"alpha");
        assert_eq!(read_body(&mut file, &b).unwrap().unwrap(), b"");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_and_recovery_truncates() {
        let path = temp_segment("torn.sil");
        let mut writer = SegmentWriter::create(&path).unwrap();
        writer.append(0, 1, b"kept").unwrap();
        let valid = writer.len();
        drop(writer);
        // Simulate a crash mid-append: half an entry header.
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(&[0x20, 0x00]).unwrap();
        drop(file);

        let report = scan(&path).unwrap();
        assert!(report.dropped);
        assert_eq!(report.entries.len(), 1);
        assert_eq!(report.valid_len, valid);
        assert_eq!(report.dropped_bytes, 2);

        let mut writer = SegmentWriter::recover(&path, report.valid_len).unwrap();
        writer.append(0, 2, b"after").unwrap();
        drop(writer);
        let report = scan(&path).unwrap();
        assert!(!report.dropped);
        assert_eq!(report.entries.len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_magic_means_no_valid_prefix() {
        let path = temp_segment("bad-magic.sil");
        std::fs::write(&path, b"NOTSEG!\ngarbage").unwrap();
        let report = scan(&path).unwrap();
        assert!(report.dropped);
        assert!(report.entries.is_empty());
        assert_eq!(report.valid_len, 0);
        std::fs::remove_file(&path).unwrap();
    }
}
