//! The durable disk tier under the in-memory
//! [`SummaryStore`](crate::store::SummaryStore): a content-addressed,
//! log-structured cache that survives daemon restarts.
//!
//! Summaries are immutable values keyed by stable content fingerprints,
//! which makes the disk tier an append-only log with none of the usual
//! update-in-place hazards:
//!
//! * **Write-behind** — the analysis hot path enqueues the value (an
//!   `Arc`, no copy) on an unbounded channel and returns; one background
//!   flusher thread encodes it with the workspace's own JSON codec and
//!   appends it to the active [`segment`] file.  With
//!   [`DurableConfig::fsync`] the flusher syncs after every batch; either
//!   way the hot path never blocks on the disk.
//! * **Crash-safe recovery** — opening the tier scans every segment and
//!   trusts only the intact prefix (length + checksum verified per
//!   entry); a torn final write or a corrupt entry truncates the segment
//!   there.  Recovery is observable: a `disk-recovery` span plus
//!   [`DiskStats::recovered_entries`] / [`DiskStats::dropped_bytes`].
//! * **Compaction & admission** — rewriting a key appends a fresh entry
//!   and dead-letters the old one; when sealed segments are mostly dead
//!   the flusher folds their live entries forward and deletes them.  When
//!   the tier outgrows [`DurableConfig::byte_budget`], the coldest
//!   entries are evicted first — ranked LRU or LFU according to what the
//!   in-memory namespace's *adaptive* policy currently believes about the
//!   traffic (its ghost/regret counters drive the choice), so the disk
//!   tier inherits the same admission judgement (cf. the NDN caching
//!   literature: disk is one more cache tier, not an archive).
//!
//! The decoded values round-trip exactly: a program served from disk
//! reports the same `analysis_digest` the original analysis did (the
//! codec stores the digest and refuses to serve an entry that fails to
//! reproduce it).

use super::segment::{self, EntryRef, SegmentWriter};
use super::{PolicyChoice, SummaryTable};
use crate::service::json::{self, Json};
use crate::AnalyzedProgram;
use sil_analysis::{
    AbstractState, AnalysisResult, ArgMode, ProcSummary, ProcedureAnalysis, ProgramPoint,
    ReturnSummary, StructureKind, StructureWarning,
};
use sil_lang::hash::program_fingerprint;
use sil_lang::{frontend, pretty_program};
use sil_pathmatrix::{Certainty, Dir, Link, Path as RelPath, PathMatrix, PathSet};
use silobs::Tracer;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fs::File;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{mpsc, Arc, Mutex};

/// Namespace tag of whole-program entries.
pub const NS_PROGRAM: u8 = 0;
/// Namespace tag of per-SCC summary-table entries.
pub const NS_SUMMARY: u8 = 1;

/// How the durable tier is shaped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurableConfig {
    /// Directory holding the segment files (created if missing).
    pub data_dir: PathBuf,
    /// Sync every flush batch to stable storage (safer, slower); without
    /// it a power loss can cost the most recent writes — never integrity.
    pub fsync: bool,
    /// Rotate the active segment once it grows past this many bytes.
    pub segment_bytes: u64,
    /// Evict coldest entries once live bytes exceed this (0 = unbounded).
    pub byte_budget: u64,
}

impl DurableConfig {
    /// A tier rooted at `data_dir` with default sizing (4 MiB segments,
    /// 512 MiB budget, no fsync).
    pub fn at(data_dir: impl Into<PathBuf>) -> DurableConfig {
        DurableConfig {
            data_dir: data_dir.into(),
            fsync: false,
            segment_bytes: 4 << 20,
            byte_budget: 512 << 20,
        }
    }

    pub fn with_fsync(mut self, fsync: bool) -> DurableConfig {
        self.fsync = fsync;
        self
    }

    pub fn with_segment_bytes(mut self, segment_bytes: u64) -> DurableConfig {
        self.segment_bytes = segment_bytes.max(1);
        self
    }

    pub fn with_byte_budget(mut self, byte_budget: u64) -> DurableConfig {
        self.byte_budget = byte_budget;
        self
    }
}

/// Counter snapshot of the disk tier (all monotonic except the gauges
/// `entries`/`live_bytes`/`segments`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Lookups served from disk.
    pub hits: u64,
    /// Lookups that missed the disk tier too.
    pub misses: u64,
    /// Body bytes read back on hits.
    pub read_bytes: u64,
    /// Entry bytes appended (headers included).
    pub written_bytes: u64,
    /// Live (indexed) entries right now.
    pub entries: u64,
    /// Bytes those live entries occupy on disk.
    pub live_bytes: u64,
    /// Segment files on disk right now.
    pub segments: u64,
    /// Flush batches the background thread completed.
    pub flushes: u64,
    /// Compaction passes that rewrote sealed segments.
    pub compactions: u64,
    /// Entries dropped by the byte-budget admission policy.
    pub evictions: u64,
    /// Intact entries loaded by recovery scans.
    pub recovered_entries: u64,
    /// Torn/corrupt bytes recovery truncated away.
    pub dropped_bytes: u64,
}

/// One write-behind job for the flusher thread.  Values travel as `Arc`s;
/// encoding happens off the hot path, on the flusher.
enum Job {
    Program(u64, Arc<AnalyzedProgram>, u64),
    Summaries(u64, SummaryTable, u64),
    /// Ack once every job enqueued before this one is on disk.
    Barrier(mpsc::SyncSender<()>),
}

#[derive(Debug)]
struct SegmentMeta {
    path: PathBuf,
    len: u64,
    live_bytes: u64,
    live_entries: u64,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    segment: u64,
    entry: EntryRef,
    /// Logical access clock at last touch (the LRU rank).
    stamp: u64,
    /// Touches since the entry landed (the LFU rank).
    uses: u64,
}

#[derive(Debug, Default)]
struct TierState {
    segments: BTreeMap<u64, SegmentMeta>,
    active: u64,
    writer: Option<SegmentWriter>,
    index: HashMap<(u8, u64), Slot>,
    clock: u64,
}

#[derive(Debug, Default)]
struct DiskCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    read_bytes: AtomicU64,
    written_bytes: AtomicU64,
    flushes: AtomicU64,
    compactions: AtomicU64,
    evictions: AtomicU64,
    recovered_entries: AtomicU64,
    dropped_bytes: AtomicU64,
}

struct TierShared {
    config: DurableConfig,
    state: Mutex<TierState>,
    counters: DiskCounters,
    /// Bumped by [`DurableTier::clear`]; jobs enqueued under an older
    /// generation are discarded instead of resurrecting cleared entries.
    generation: AtomicU64,
    /// The in-memory namespaces' current adaptive verdict (LRU vs LFU),
    /// refreshed on every store write; ranks byte-budget eviction.
    hints: [AtomicU8; 2],
    tracer: Arc<Tracer>,
}

/// The durable tier: an on-disk index over append-only segments, plus the
/// background flusher that feeds it.
pub struct DurableTier {
    shared: Arc<TierShared>,
    sender: Option<mpsc::Sender<Job>>,
    flusher: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for DurableTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableTier")
            .field("config", &self.shared.config)
            .finish_non_exhaustive()
    }
}

impl DurableTier {
    /// Open (or create) the tier at its data directory, recovering every
    /// segment's intact prefix, then start the write-behind flusher.
    pub fn open(config: DurableConfig) -> io::Result<DurableTier> {
        std::fs::create_dir_all(&config.data_dir)?;
        let tracer = Arc::new(Tracer::default());
        let shared = Arc::new(TierShared {
            config,
            state: Mutex::new(TierState::default()),
            counters: DiskCounters::default(),
            generation: AtomicU64::new(0),
            hints: [AtomicU8::new(0), AtomicU8::new(0)],
            tracer,
        });
        {
            let _span = shared.tracer.start("disk-recovery");
            shared.recover()?;
        }
        let (sender, receiver) = mpsc::channel();
        let flusher_shared = shared.clone();
        let flusher = std::thread::Builder::new()
            .name("sil-durable-flush".to_string())
            .spawn(move || flusher_loop(&flusher_shared, &receiver))
            .expect("spawning the durable flusher thread");
        Ok(DurableTier {
            shared,
            sender: Some(sender),
            flusher: Some(flusher),
        })
    }

    /// The span ring recovery/flush/compaction record into.  The service
    /// layer adopts this as its shared tracer so `disk-*` spans show up in
    /// `TraceDump` responses next to `parse`/`fixpoint`.
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.shared.tracer
    }

    /// Where the segments live.
    pub fn data_dir(&self) -> &std::path::Path {
        &self.shared.config.data_dir
    }

    /// Read one entry's body back, touching its recency/frequency rank.
    pub fn get(&self, namespace: u8, key: u64) -> Option<Vec<u8>> {
        let mut state = self.shared.state.lock().unwrap();
        let Some(slot) = state.index.get_mut(&(namespace, key)).copied() else {
            self.shared.counters.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        state.clock += 1;
        let clock = state.clock;
        if let Some(live) = state.index.get_mut(&(namespace, key)) {
            live.stamp = clock;
            live.uses += 1;
        }
        let body = state
            .segments
            .get(&slot.segment)
            .and_then(|meta| File::open(&meta.path).ok())
            .and_then(|mut file| segment::read_body(&mut file, &slot.entry).ok().flatten());
        match body {
            Some(body) => {
                self.shared.counters.hits.fetch_add(1, Ordering::Relaxed);
                self.shared
                    .counters
                    .read_bytes
                    .fetch_add(body.len() as u64, Ordering::Relaxed);
                Some(body)
            }
            None => {
                // The bytes no longer verify (rot, external truncation):
                // forget the entry rather than serving garbage.
                state.drop_slot(namespace, key);
                self.shared.counters.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Enqueue a whole-program entry for write-behind persistence.
    pub fn put_program(&self, key: u64, entry: Arc<AnalyzedProgram>) {
        self.send(Job::Program(
            key,
            entry,
            self.shared.generation.load(Ordering::SeqCst),
        ));
    }

    /// Enqueue a per-SCC summary table for write-behind persistence.
    pub fn put_summaries(&self, key: u64, table: SummaryTable) {
        self.send(Job::Summaries(
            key,
            table,
            self.shared.generation.load(Ordering::SeqCst),
        ));
    }

    /// Refresh the eviction-rank hint for one namespace from the
    /// in-memory cache's live policy choice.
    pub fn note_policy(&self, namespace: u8, choice: PolicyChoice) {
        let rank = match choice {
            PolicyChoice::Lru => 0,
            PolicyChoice::Lfu => 1,
        };
        if let Some(hint) = self.shared.hints.get(namespace as usize) {
            hint.store(rank, Ordering::Relaxed);
        }
    }

    /// Block until every job enqueued before this call is on disk (and
    /// synced, under [`DurableConfig::fsync`]).
    pub fn flush(&self) {
        let (ack, done) = mpsc::sync_channel(1);
        self.send(Job::Barrier(ack));
        let _ = done.recv();
    }

    /// Truncate the tier: every segment file is deleted and the index is
    /// emptied; queued stale writes are discarded.  Counters survive.
    pub fn clear(&self) {
        let mut state = self.shared.state.lock().unwrap();
        self.shared.generation.fetch_add(1, Ordering::SeqCst);
        state.writer = None;
        for meta in state.segments.values() {
            let _ = std::fs::remove_file(&meta.path);
        }
        state.segments.clear();
        state.index.clear();
        state.active += 1;
    }

    /// Counter snapshot.
    pub fn stats(&self) -> DiskStats {
        let state = self.shared.state.lock().unwrap();
        let counters = &self.shared.counters;
        DiskStats {
            hits: counters.hits.load(Ordering::Relaxed),
            misses: counters.misses.load(Ordering::Relaxed),
            read_bytes: counters.read_bytes.load(Ordering::Relaxed),
            written_bytes: counters.written_bytes.load(Ordering::Relaxed),
            entries: state.index.len() as u64,
            live_bytes: state.segments.values().map(|m| m.live_bytes).sum(),
            segments: state.segments.len() as u64,
            flushes: counters.flushes.load(Ordering::Relaxed),
            compactions: counters.compactions.load(Ordering::Relaxed),
            evictions: counters.evictions.load(Ordering::Relaxed),
            recovered_entries: counters.recovered_entries.load(Ordering::Relaxed),
            dropped_bytes: counters.dropped_bytes.load(Ordering::Relaxed),
        }
    }

    fn send(&self, job: Job) {
        if let Some(sender) = &self.sender {
            let _ = sender.send(job);
        }
    }
}

impl Drop for DurableTier {
    /// Closing the channel lets the flusher drain everything still queued
    /// and exit; joining it makes drop a graceful flush.
    fn drop(&mut self) {
        self.sender.take();
        if let Some(flusher) = self.flusher.take() {
            let _ = flusher.join();
        }
    }
}

fn segment_path(dir: &std::path::Path, id: u64) -> PathBuf {
    dir.join(format!("seg-{id:06}.sil"))
}

fn segment_id(path: &std::path::Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    name.strip_prefix("seg-")?
        .strip_suffix(".sil")?
        .parse()
        .ok()
}

impl TierState {
    fn drop_slot(&mut self, namespace: u8, key: u64) {
        if let Some(slot) = self.index.remove(&(namespace, key)) {
            if let Some(meta) = self.segments.get_mut(&slot.segment) {
                meta.live_bytes = meta.live_bytes.saturating_sub(slot.entry.stored_bytes());
                meta.live_entries = meta.live_entries.saturating_sub(1);
            }
        }
    }

    fn index_entry(&mut self, segment: u64, entry: EntryRef) {
        self.drop_slot(entry.namespace, entry.key);
        self.clock += 1;
        let stamp = self.clock;
        self.index.insert(
            (entry.namespace, entry.key),
            Slot {
                segment,
                entry,
                stamp,
                uses: 1,
            },
        );
        if let Some(meta) = self.segments.get_mut(&segment) {
            meta.live_bytes += entry.stored_bytes();
            meta.live_entries += 1;
        }
    }

    fn live_bytes(&self) -> u64 {
        self.segments.values().map(|m| m.live_bytes).sum()
    }
}

impl TierShared {
    /// Scan every segment in id order (later segments win duplicate
    /// keys), truncating each to its intact prefix.
    fn recover(&self) -> io::Result<()> {
        let mut ids: Vec<u64> = std::fs::read_dir(&self.config.data_dir)?
            .filter_map(|entry| entry.ok())
            .filter_map(|entry| segment_id(&entry.path()))
            .collect();
        ids.sort_unstable();
        let mut state = self.state.lock().unwrap();
        for &id in &ids {
            let path = segment_path(&self.config.data_dir, id);
            let report = match segment::scan(&path) {
                Ok(report) => report,
                Err(_) => continue, // unreadable file: leave it alone
            };
            self.counters
                .recovered_entries
                .fetch_add(report.entries.len() as u64, Ordering::Relaxed);
            self.counters
                .dropped_bytes
                .fetch_add(report.dropped_bytes, Ordering::Relaxed);
            state.segments.insert(
                id,
                SegmentMeta {
                    path: path.clone(),
                    len: report.valid_len.max(segment::MAGIC.len() as u64),
                    live_bytes: 0,
                    live_entries: 0,
                },
            );
            for entry in report.entries {
                state.index_entry(id, entry);
            }
            if report.dropped {
                // Physically cut the untrusted tail so later appends (and
                // later recoveries) see an intact file.
                drop(SegmentWriter::recover(&path, report.valid_len)?);
            }
        }
        state.active = ids.last().copied().unwrap_or(0).max(1);
        let active_path = segment_path(&self.config.data_dir, state.active);
        if let Some(meta) = state.segments.get(&state.active) {
            state.writer = Some(SegmentWriter::recover(&active_path, meta.len)?);
        }
        Ok(())
    }
}

/// The flusher thread: drain jobs in batches, append, rotate, optionally
/// fsync, then evict/compact in the background.
fn flusher_loop(shared: &Arc<TierShared>, receiver: &mpsc::Receiver<Job>) {
    while let Ok(first) = receiver.recv() {
        let mut batch = vec![first];
        while batch.len() < 256 {
            match receiver.try_recv() {
                Ok(job) => batch.push(job),
                Err(_) => break,
            }
        }
        let mut barriers = Vec::new();
        {
            let _span = shared.tracer.start("disk-flush");
            for job in batch {
                match job {
                    Job::Program(key, entry, generation) => {
                        let body = codec::encode_program(&entry);
                        append(shared, NS_PROGRAM, key, &body, generation);
                    }
                    Job::Summaries(key, table, generation) => {
                        let body = codec::encode_summaries(&table, key);
                        append(shared, NS_SUMMARY, key, &body, generation);
                    }
                    Job::Barrier(ack) => barriers.push(ack),
                }
            }
            if shared.config.fsync {
                let state = shared.state.lock().unwrap();
                if let Some(writer) = &state.writer {
                    let _ = writer.sync();
                }
            }
        }
        shared.counters.flushes.fetch_add(1, Ordering::Relaxed);
        maintain(shared);
        for ack in barriers {
            let _ = ack.send(());
        }
    }
}

/// Append one encoded entry to the active segment, rotating when full.
fn append(shared: &Arc<TierShared>, namespace: u8, key: u64, body: &[u8], generation: u64) {
    let mut state = shared.state.lock().unwrap();
    append_locked(shared, &mut state, namespace, key, body, generation);
}

/// Background maintenance after a flush batch: byte-budget eviction
/// ranked by the adaptive policy's current verdict, then compaction of
/// mostly-dead sealed segments.
fn maintain(shared: &Arc<TierShared>) {
    let mut state = shared.state.lock().unwrap();

    // Eviction: shed the coldest entries until live bytes fit the budget.
    let budget = shared.config.byte_budget;
    if budget > 0 && state.live_bytes() > budget {
        let mut ranked: Vec<((u8, u64), u64, u64)> = state
            .index
            .iter()
            .map(|(&(ns, key), slot)| {
                let lfu = shared
                    .hints
                    .get(ns as usize)
                    .map(|h| h.load(Ordering::Relaxed) == 1)
                    .unwrap_or(false);
                // Smaller rank = colder = evicted first.  LRU ranks by
                // last touch, LFU by touch count (clock breaks ties).
                let rank = if lfu { slot.uses } else { slot.stamp };
                ((ns, key), rank, slot.stamp)
            })
            .collect();
        ranked.sort_by_key(|&(_, rank, stamp)| (rank, stamp));
        for ((ns, key), _, _) in ranked {
            if state.live_bytes() <= budget {
                break;
            }
            state.drop_slot(ns, key);
            shared.counters.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    // Compaction: fold sealed segments' live entries into the active
    // segment once more than half their bytes are dead weight.
    let sealed: Vec<u64> = state
        .segments
        .keys()
        .copied()
        .filter(|&id| id != state.active)
        .collect();
    let magic = segment::MAGIC.len() as u64;
    let sealed_total: u64 = sealed
        .iter()
        .filter_map(|id| state.segments.get(id))
        .map(|m| m.len.saturating_sub(magic))
        .sum();
    let sealed_live: u64 = sealed
        .iter()
        .filter_map(|id| state.segments.get(id))
        .map(|m| m.live_bytes)
        .sum();
    if sealed_total == 0 || sealed_live * 2 > sealed_total {
        return;
    }
    let _span = shared.tracer.start("disk-compact");
    for id in sealed {
        let Some(meta) = state.segments.get(&id) else {
            continue;
        };
        let path = meta.path.clone();
        // Copy the segment's live entries forward into the active writer.
        let moved: Vec<((u8, u64), EntryRef)> = state
            .index
            .iter()
            .filter(|(_, slot)| slot.segment == id)
            .map(|(&key, slot)| (key, slot.entry))
            .collect();
        let mut source = match File::open(&path) {
            Ok(file) => file,
            Err(_) => continue,
        };
        let mut copied = true;
        for ((ns, key), entry) in moved {
            let Ok(Some(body)) = segment::read_body(&mut source, &entry) else {
                // Unreadable live entry: forget it rather than block
                // compaction forever.
                state.drop_slot(ns, key);
                continue;
            };
            let generation = shared.generation.load(Ordering::SeqCst);
            // Re-append through the normal path (handles rotation).
            append_locked(shared, &mut state, ns, key, &body, generation);
            if !state.index.contains_key(&(ns, key)) {
                copied = false;
            }
        }
        if copied {
            state.segments.remove(&id);
            let _ = std::fs::remove_file(&path);
        }
    }
    shared.counters.compactions.fetch_add(1, Ordering::Relaxed);
}

/// [`append`] for callers already holding the state lock.
fn append_locked(
    shared: &Arc<TierShared>,
    state: &mut TierState,
    namespace: u8,
    key: u64,
    body: &[u8],
    generation: u64,
) {
    if generation != shared.generation.load(Ordering::SeqCst) {
        return;
    }
    if state.writer.is_none() {
        let id = state.active;
        let path = segment_path(&shared.config.data_dir, id);
        match SegmentWriter::create(&path) {
            Ok(writer) => {
                state.segments.insert(
                    id,
                    SegmentMeta {
                        path,
                        len: writer.len(),
                        live_bytes: 0,
                        live_entries: 0,
                    },
                );
                state.writer = Some(writer);
            }
            Err(e) => {
                eprintln!("sil durable store: cannot create segment: {e}");
                return;
            }
        }
    }
    let active = state.active;
    let writer = state.writer.as_mut().unwrap();
    match writer.append(namespace, key, body) {
        Ok(entry) => {
            let len = writer.len();
            shared
                .counters
                .written_bytes
                .fetch_add(entry.stored_bytes(), Ordering::Relaxed);
            if let Some(meta) = state.segments.get_mut(&active) {
                meta.len = len;
            }
            state.index_entry(active, entry);
            if len >= shared.config.segment_bytes {
                state.writer = None;
                state.active += 1;
            }
        }
        Err(e) => eprintln!("sil durable store: append failed: {e}"),
    }
}

/// The on-disk value codec: the workspace's own JSON module, no new
/// dependencies.  Programs store their pretty-printed source (the
/// frontend round-trips it) plus the full [`AnalysisResult`]; decoding
/// verifies both the content fingerprint and the analysis digest, so a
/// disk hit is byte-identical to recomputing or it is a miss.
pub(crate) mod codec {
    use super::*;

    fn jfield<'a>(value: &'a Json, key: &str) -> Result<&'a Json, String> {
        value.get(key).ok_or_else(|| format!("missing {key:?}"))
    }

    fn jstr(value: &Json, key: &str) -> Result<String, String> {
        Ok(jfield(value, key)?
            .as_str()
            .ok_or_else(|| format!("{key:?} must be a string"))?
            .to_string())
    }

    fn jarr<'a>(value: &'a Json, key: &str) -> Result<&'a [Json], String> {
        jfield(value, key)?
            .as_arr()
            .ok_or_else(|| format!("{key:?} must be an array"))
    }

    fn mode_to_json(mode: ArgMode) -> Json {
        Json::Str(
            match mode {
                ArgMode::ReadOnly => "readonly",
                ArgMode::ValueUpdate => "value_update",
                ArgMode::StructUpdate => "struct_update",
            }
            .to_string(),
        )
    }

    fn mode_from_json(value: &Json) -> Result<ArgMode, String> {
        match value.as_str() {
            Some("readonly") => Ok(ArgMode::ReadOnly),
            Some("value_update") => Ok(ArgMode::ValueUpdate),
            Some("struct_update") => Ok(ArgMode::StructUpdate),
            other => Err(format!("unknown arg mode {other:?}")),
        }
    }

    fn structure_to_json(kind: StructureKind) -> Json {
        Json::Str(kind.to_string())
    }

    fn structure_from_json(value: &Json) -> Result<StructureKind, String> {
        match value.as_str() {
            Some("TREE") => Ok(StructureKind::Tree),
            Some("DAG?") => Ok(StructureKind::PossiblyDag),
            Some("CYCLE?") => Ok(StructureKind::PossiblyCyclic),
            other => Err(format!("unknown structure kind {other:?}")),
        }
    }

    /// A path is `[definite, links]`: `links` is `null` for `S`ame, else
    /// `[[dir_letter, min, exact], ...]`.
    fn path_to_json(path: &RelPath) -> Json {
        let links = if path.is_same() {
            Json::Null
        } else {
            Json::Arr(
                path.links()
                    .iter()
                    .map(|link| {
                        Json::Arr(vec![
                            Json::Str(link.dir.letter().to_string()),
                            Json::Int(link.min as i64),
                            Json::Bool(link.exact),
                        ])
                    })
                    .collect(),
            )
        };
        Json::Arr(vec![
            Json::Bool(path.certainty == Certainty::Definite),
            links,
        ])
    }

    fn path_from_json(value: &Json) -> Result<RelPath, String> {
        let parts = value.as_arr().ok_or("path must be an array")?;
        let [definite, links] = parts else {
            return Err("path must be [definite, links]".to_string());
        };
        let certainty = if definite.as_bool().ok_or("path[0] must be a bool")? {
            Certainty::Definite
        } else {
            Certainty::Possible
        };
        match links {
            Json::Null => Ok(RelPath::same(certainty)),
            Json::Arr(links) if !links.is_empty() => Ok(RelPath::from_links(
                links
                    .iter()
                    .map(link_from_json)
                    .collect::<Result<Vec<Link>, String>>()?,
                certainty,
            )),
            Json::Arr(_) => Err("path links must be non-empty".to_string()),
            _ => Err("path[1] must be null or an array".to_string()),
        }
    }

    fn link_from_json(value: &Json) -> Result<Link, String> {
        let parts = value.as_arr().ok_or("link must be an array")?;
        let [dir, min, exact] = parts else {
            return Err("link must be [dir, min, exact]".to_string());
        };
        let dir = match dir.as_str() {
            Some("L") => Dir::Left,
            Some("R") => Dir::Right,
            Some("D") => Dir::Down,
            other => return Err(format!("unknown link direction {other:?}")),
        };
        let min = min
            .as_u64()
            .and_then(|n| u32::try_from(n).ok())
            .filter(|&n| n >= 1)
            .ok_or("link min must be a positive count")?;
        let exact = exact.as_bool().ok_or("link exact must be a bool")?;
        Ok(Link { dir, min, exact })
    }

    fn pathset_to_json(set: &PathSet) -> Json {
        Json::Arr(set.paths().iter().map(path_to_json).collect())
    }

    fn pathset_from_json(value: &Json) -> Result<PathSet, String> {
        Ok(PathSet::from_paths(
            value
                .as_arr()
                .ok_or("path set must be an array")?
                .iter()
                .map(path_from_json)
                .collect::<Result<Vec<RelPath>, String>>()?,
        ))
    }

    fn names_to_json<S: AsRef<str>>(names: impl IntoIterator<Item = S>) -> Json {
        Json::Arr(
            names
                .into_iter()
                .map(|name| Json::Str(name.as_ref().to_string()))
                .collect(),
        )
    }

    fn names_from_json(value: &Json, key: &str) -> Result<Vec<String>, String> {
        jarr(value, key)?
            .iter()
            .map(|name| {
                name.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| format!("{key:?} must hold strings"))
            })
            .collect()
    }

    /// Handles are stored *in matrix insertion order* — `render()` (and
    /// through it the analysis digest) depends on that order.
    fn state_to_json(state: &AbstractState) -> Json {
        let mut entries: Vec<(&str, &str, &PathSet)> = state.matrix.related_pairs().collect();
        entries.sort_by_key(|&(a, b, _)| (a, b));
        Json::obj(vec![
            ("structure", structure_to_json(state.structure)),
            ("handles", names_to_json(state.matrix.handle_names())),
            (
                "entries",
                Json::Arr(
                    entries
                        .into_iter()
                        .map(|(a, b, set)| {
                            Json::Arr(vec![
                                Json::Str(a.to_string()),
                                Json::Str(b.to_string()),
                                pathset_to_json(set),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("attached", names_to_json(&state.attached)),
            ("shared", names_to_json(&state.shared)),
        ])
    }

    fn state_from_json(value: &Json) -> Result<AbstractState, String> {
        let mut matrix = PathMatrix::with_handles(names_from_json(value, "handles")?);
        for entry in jarr(value, "entries")? {
            let parts = entry.as_arr().ok_or("matrix entry must be an array")?;
            let [a, b, set] = parts else {
                return Err("matrix entry must be [a, b, paths]".to_string());
            };
            let a = a.as_str().ok_or("entry handle must be a string")?;
            let b = b.as_str().ok_or("entry handle must be a string")?;
            matrix.set(a, b, pathset_from_json(set)?);
        }
        Ok(AbstractState {
            matrix,
            structure: structure_from_json(jfield(value, "structure")?)?,
            attached: BTreeSet::from_iter(names_from_json(value, "attached")?),
            shared: BTreeSet::from_iter(names_from_json(value, "shared")?),
        })
    }

    fn warning_to_json(warning: &StructureWarning) -> Json {
        Json::obj(vec![
            ("procedure", Json::Str(warning.procedure.clone())),
            ("statement", Json::Str(warning.statement.clone())),
            ("kind", structure_to_json(warning.kind)),
            ("message", Json::Str(warning.message.clone())),
        ])
    }

    fn warning_from_json(value: &Json) -> Result<StructureWarning, String> {
        Ok(StructureWarning {
            procedure: jstr(value, "procedure")?,
            statement: jstr(value, "statement")?,
            kind: structure_from_json(jfield(value, "kind")?)?,
            message: jstr(value, "message")?,
        })
    }

    fn procedure_to_json(proc: &ProcedureAnalysis) -> Json {
        Json::obj(vec![
            ("name", Json::Str(proc.name.clone())),
            ("entry", state_to_json(&proc.entry)),
            ("exit", state_to_json(&proc.exit)),
            (
                "points",
                Json::Arr(
                    proc.points
                        .iter()
                        .map(|point| {
                            Json::obj(vec![
                                ("label", Json::Str(point.label.clone())),
                                ("statement", Json::Str(point.statement.clone())),
                                (
                                    "callee",
                                    point
                                        .callee
                                        .as_ref()
                                        .map(|c| Json::Str(c.clone()))
                                        .unwrap_or(Json::Null),
                                ),
                                ("state", state_to_json(&point.state)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "warnings",
                Json::Arr(proc.warnings.iter().map(warning_to_json).collect()),
            ),
        ])
    }

    fn procedure_from_json(value: &Json) -> Result<ProcedureAnalysis, String> {
        Ok(ProcedureAnalysis {
            name: jstr(value, "name")?,
            entry: state_from_json(jfield(value, "entry")?)?,
            exit: state_from_json(jfield(value, "exit")?)?,
            points: jarr(value, "points")?
                .iter()
                .map(|point| {
                    Ok(ProgramPoint {
                        label: jstr(point, "label")?,
                        statement: jstr(point, "statement")?,
                        callee: match jfield(point, "callee")? {
                            Json::Null => None,
                            other => Some(
                                other
                                    .as_str()
                                    .ok_or("callee must be a string or null")?
                                    .to_string(),
                            ),
                        },
                        state: state_from_json(jfield(point, "state")?)?,
                    })
                })
                .collect::<Result<Vec<ProgramPoint>, String>>()?,
            warnings: jarr(value, "warnings")?
                .iter()
                .map(warning_from_json)
                .collect::<Result<Vec<StructureWarning>, String>>()?,
        })
    }

    fn proc_summary_to_json(summary: &ProcSummary) -> Json {
        Json::obj(vec![
            ("name", Json::Str(summary.name.clone())),
            (
                "handle_args",
                Json::Arr(
                    summary
                        .handle_args
                        .iter()
                        .map(|(formal, &mode)| {
                            Json::Arr(vec![Json::Str(formal.clone()), mode_to_json(mode)])
                        })
                        .collect(),
                ),
            ),
            (
                "arg_modes",
                Json::Arr(
                    summary
                        .arg_modes
                        .iter()
                        .map(|mode| mode.map(mode_to_json).unwrap_or(Json::Null))
                        .collect(),
                ),
            ),
        ])
    }

    fn proc_summary_from_json(value: &Json) -> Result<ProcSummary, String> {
        Ok(ProcSummary {
            name: jstr(value, "name")?,
            handle_args: jarr(value, "handle_args")?
                .iter()
                .map(|pair| {
                    let parts = pair.as_arr().ok_or("handle arg must be an array")?;
                    let [formal, mode] = parts else {
                        return Err("handle arg must be [formal, mode]".to_string());
                    };
                    Ok((
                        formal
                            .as_str()
                            .ok_or("formal must be a string")?
                            .to_string(),
                        mode_from_json(mode)?,
                    ))
                })
                .collect::<Result<BTreeMap<String, ArgMode>, String>>()?,
            arg_modes: jarr(value, "arg_modes")?
                .iter()
                .map(|mode| match mode {
                    Json::Null => Ok(None),
                    other => mode_from_json(other).map(Some),
                })
                .collect::<Result<Vec<Option<ArgMode>>, String>>()?,
        })
    }

    fn return_summary_to_json(summary: &ReturnSummary) -> Json {
        Json::obj(vec![
            ("fresh", Json::Bool(summary.fresh)),
            (
                "relations",
                Json::Arr(
                    summary
                        .relations
                        .iter()
                        .map(|(formal, to_ret, from_ret)| {
                            Json::Arr(vec![
                                Json::Str(formal.clone()),
                                pathset_to_json(to_ret),
                                pathset_to_json(from_ret),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    fn return_summary_from_json(value: &Json) -> Result<ReturnSummary, String> {
        Ok(ReturnSummary {
            fresh: jfield(value, "fresh")?
                .as_bool()
                .ok_or("\"fresh\" must be a bool")?,
            relations: jarr(value, "relations")?
                .iter()
                .map(|relation| {
                    let parts = relation.as_arr().ok_or("relation must be an array")?;
                    let [formal, to_ret, from_ret] = parts else {
                        return Err("relation must be [formal, to, from]".to_string());
                    };
                    Ok((
                        formal
                            .as_str()
                            .ok_or("formal must be a string")?
                            .to_string(),
                        pathset_from_json(to_ret)?,
                        pathset_from_json(from_ret)?,
                    ))
                })
                .collect::<Result<Vec<(String, PathSet, PathSet)>, String>>()?,
        })
    }

    /// Keyed-map helper: `[[key, value], ...]` with the keys sorted, so
    /// the encoding is deterministic whatever map produced it.
    fn keyed_to_json<V>(map: &HashMap<String, V>, encode: impl Fn(&V) -> Json) -> Json {
        let mut keys: Vec<&String> = map.keys().collect();
        keys.sort();
        Json::Arr(
            keys.into_iter()
                .map(|key| Json::Arr(vec![Json::Str(key.clone()), encode(&map[key])]))
                .collect(),
        )
    }

    fn keyed_from_json<V>(
        value: &Json,
        key: &str,
        decode: impl Fn(&Json) -> Result<V, String>,
    ) -> Result<HashMap<String, V>, String> {
        jarr(value, key)?
            .iter()
            .map(|pair| {
                let parts = pair.as_arr().ok_or("keyed entry must be an array")?;
                let [name, body] = parts else {
                    return Err("keyed entry must be [key, value]".to_string());
                };
                Ok((
                    name.as_str().ok_or("key must be a string")?.to_string(),
                    decode(body)?,
                ))
            })
            .collect()
    }

    /// Encode one analyzed program for the program namespace.
    pub(crate) fn encode_program(entry: &AnalyzedProgram) -> Vec<u8> {
        let analysis = &entry.analysis;
        let mut procedures: HashMap<String, &ProcedureAnalysis> = HashMap::new();
        for proc in analysis.procedures() {
            procedures.insert(proc.name.clone(), proc);
        }
        Json::obj(vec![
            ("v", Json::Int(1)),
            ("fingerprint", json::hex64(entry.fingerprint)),
            ("digest", json::hex64(analysis.digest())),
            ("source", Json::Str(pretty_program(&entry.program))),
            ("rounds", Json::Int(analysis.rounds as i64)),
            (
                "procedures",
                keyed_to_json(&procedures, |proc| procedure_to_json(proc)),
            ),
            (
                "summaries",
                keyed_to_json(&analysis.summaries, proc_summary_to_json),
            ),
            (
                "return_summaries",
                keyed_to_json(&analysis.return_summaries, return_summary_to_json),
            ),
            (
                "warnings",
                Json::Arr(analysis.warnings.iter().map(warning_to_json).collect()),
            ),
        ])
        .encode()
        .into_bytes()
    }

    /// Decode a program entry, refusing anything whose source fingerprint
    /// or analysis digest fails to reproduce `key`'s original.
    pub(crate) fn decode_program(body: &[u8], key: u64) -> Option<Arc<AnalyzedProgram>> {
        decode_program_checked(body, key).ok().map(Arc::new)
    }

    fn decode_program_checked(body: &[u8], key: u64) -> Result<AnalyzedProgram, String> {
        let text = std::str::from_utf8(body).map_err(|e| e.to_string())?;
        let value = Json::parse(text).map_err(|e| e.to_string())?;
        if jfield(&value, "v")?.as_u64() != Some(1) {
            return Err("unknown program entry version".to_string());
        }
        if json::parse_hex64(jfield(&value, "fingerprint")?)? != key {
            return Err("entry fingerprint does not match its key".to_string());
        }
        let digest = json::parse_hex64(jfield(&value, "digest")?)?;
        let source = jstr(&value, "source")?;
        let (program, types) = frontend(&source).map_err(|e| e.to_string())?;
        if program_fingerprint(&program) != key {
            return Err("stored source re-parses to a different program".to_string());
        }
        let analysis = AnalysisResult::from_parts(
            keyed_from_json(&value, "procedures", procedure_from_json)?,
            keyed_from_json(&value, "summaries", proc_summary_from_json)?,
            keyed_from_json(&value, "return_summaries", return_summary_from_json)?,
            jarr(&value, "warnings")?
                .iter()
                .map(warning_from_json)
                .collect::<Result<Vec<StructureWarning>, String>>()?,
            jfield(&value, "rounds")?
                .as_u64()
                .ok_or("\"rounds\" must be a count")? as usize,
        );
        if analysis.digest() != digest {
            return Err("decoded analysis does not reproduce its digest".to_string());
        }
        Ok(AnalyzedProgram {
            fingerprint: key,
            program,
            types,
            analysis: Arc::new(analysis),
            incremental: None,
        })
    }

    /// The content digest of a summary table: the checksum of its
    /// canonical encoding (`keyed_to_json` sorts, so the bytes are
    /// deterministic whatever map produced the table).
    fn summaries_digest(summaries: &Json) -> u64 {
        segment::checksum(summaries.encode().as_bytes())
    }

    /// Encode one per-SCC summary table for the summary namespace,
    /// binding it to the cone fingerprint it was stored under and to a
    /// digest of its own content so [`decode_summaries`] can refuse a
    /// relabeled or tampered document.
    pub(crate) fn encode_summaries(table: &SummaryTable, cone: u64) -> Vec<u8> {
        let summaries = keyed_to_json(table, proc_summary_to_json);
        Json::obj(vec![
            ("v", Json::Int(2)),
            ("fingerprint", json::hex64(cone)),
            ("digest", json::hex64(summaries_digest(&summaries))),
            ("summaries", summaries),
        ])
        .encode()
        .into_bytes()
    }

    /// Decode a summary-table entry, refusing anything whose embedded
    /// cone fingerprint is not `key` or whose content fails to reproduce
    /// its digest — the same trust model as [`decode_program`], so a
    /// disk-corrupt or peer-supplied document that was not encoded for
    /// exactly this cone degrades to a miss.
    pub(crate) fn decode_summaries(body: &[u8], key: u64) -> Option<SummaryTable> {
        decode_summaries_checked(body, key).ok().map(Arc::new)
    }

    fn decode_summaries_checked(
        body: &[u8],
        key: u64,
    ) -> Result<HashMap<String, ProcSummary>, String> {
        let text = std::str::from_utf8(body).map_err(|e| e.to_string())?;
        let value = Json::parse(text).map_err(|e| e.to_string())?;
        if jfield(&value, "v")?.as_u64() != Some(2) {
            return Err("unknown summary entry version".to_string());
        }
        if json::parse_hex64(jfield(&value, "fingerprint")?)? != key {
            return Err("entry fingerprint does not match its key".to_string());
        }
        let digest = json::parse_hex64(jfield(&value, "digest")?)?;
        let table = keyed_from_json(&value, "summaries", proc_summary_from_json)?;
        let canonical = keyed_to_json(&table, proc_summary_to_json);
        if summaries_digest(&canonical) != digest {
            return Err("decoded summaries do not reproduce their digest".to_string());
        }
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> SummaryTable {
        let mut table = HashMap::new();
        table.insert(
            "main".to_string(),
            ProcSummary {
                name: "main".to_string(),
                handle_args: BTreeMap::from([
                    ("t".to_string(), ArgMode::StructUpdate),
                    ("u".to_string(), ArgMode::ReadOnly),
                ]),
                arg_modes: vec![Some(ArgMode::StructUpdate), None, Some(ArgMode::ReadOnly)],
            },
        );
        Arc::new(table)
    }

    #[test]
    fn summary_entries_round_trip_under_their_own_key() {
        let body = codec::encode_summaries(&sample_table(), 0xfeed);
        let table = codec::decode_summaries(&body, 0xfeed).expect("round trip");
        assert_eq!(table.len(), 1);
        assert_eq!(table["main"].arg_modes, sample_table()["main"].arg_modes);
    }

    /// A well-formed document encoded for one cone must not be admitted
    /// under another key — this is what stops a peer (or a mislabeled
    /// disk entry) from answering any requested cone with a table it
    /// happens to hold.
    #[test]
    fn summary_entries_are_bound_to_their_cone_fingerprint() {
        let body = codec::encode_summaries(&sample_table(), 0xfeed);
        assert!(codec::decode_summaries(&body, 0xbeef).is_none());
        assert!(codec::decode_summaries(&body, 0xfeed).is_some());
    }

    /// Edited content without a recomputed digest is refused: the
    /// canonical re-encoding of the decoded table no longer reproduces
    /// the embedded digest.
    #[test]
    fn tampered_summary_content_fails_its_digest() {
        let body = codec::encode_summaries(&sample_table(), 0xfeed);
        let text = std::str::from_utf8(&body).unwrap();
        let forged = text.replace("\"main\"", "\"evil\"");
        assert_ne!(forged, text, "the tamper must have changed something");
        assert!(codec::decode_summaries(forged.as_bytes(), 0xfeed).is_none());
    }

    #[test]
    fn unknown_summary_entry_versions_are_refused() {
        let body = codec::encode_summaries(&sample_table(), 1);
        let text = std::str::from_utf8(&body)
            .unwrap()
            .replace("\"v\":2", "\"v\":1");
        assert!(codec::decode_summaries(text.as_bytes(), 1).is_none());
    }
}
