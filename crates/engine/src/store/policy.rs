//! Eviction policies and cache counters.
//!
//! Three policies are provided:
//!
//! * **LRU** — evict the entry touched longest ago.  Favors recency; the
//!   right choice for session-like traffic where a client re-submits the
//!   programs it is actively editing.
//! * **LFU** — evict the entry with the fewest lifetime hits (ties broken
//!   by recency).  Favors long-term popularity; under heavily skewed
//!   request distributions (a few hot programs dominating a long tail, as
//!   in the NDN caching study referenced by PAPERS.md) it keeps the hot
//!   set resident even when bursts of one-off programs sweep through.
//! * **Adaptive** — start as LRU and *switch* between LRU and LFU from the
//!   store's own live counters.  The ICN cache-policy literature shows the
//!   best fixed policy depends on the traffic (skew, burstiness), which a
//!   server cannot know up front; the adaptive controller measures the
//!   current choice's regret directly instead of guessing.
//!
//! The adaptive mechanism is a per-namespace hill climb over ghost hits:
//! whenever the two base policies would have evicted *different* victims,
//! the key actually evicted is remembered in a small per-stripe ghost list.
//! A later miss on a ghost key means the current policy threw away an
//! entry the other policy would have kept — one unit of regret.  Every
//! [`ADAPT_WINDOW`] lookups the controller compares the window's regret
//! against [`ADAPT_SWITCH_THRESHOLD`] and flips the live choice when the
//! current policy is measurably wasting its capacity.  Ghost entries are
//! tagged with the switch epoch so regret accumulated under a previous
//! regime cannot immediately flip the choice back.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Which entry to sacrifice when a cache is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EvictionPolicy {
    /// Least recently used.
    Lru,
    /// Least frequently used (ties broken by recency).
    Lfu,
    /// Start as LRU, then switch LRU↔LFU whenever the live ghost-hit
    /// counters show the current choice evicting entries the other policy
    /// would have kept.
    #[default]
    Adaptive,
}

impl EvictionPolicy {
    /// Stable lowercase name (wire format and CLI tables).
    pub fn name(self) -> &'static str {
        match self {
            EvictionPolicy::Lru => "lru",
            EvictionPolicy::Lfu => "lfu",
            EvictionPolicy::Adaptive => "adaptive",
        }
    }

    /// Inverse of [`EvictionPolicy::name`].
    pub fn from_name(name: &str) -> Option<EvictionPolicy> {
        Some(match name {
            "lru" => EvictionPolicy::Lru,
            "lfu" => EvictionPolicy::Lfu,
            "adaptive" => EvictionPolicy::Adaptive,
            _ => return None,
        })
    }
}

/// A concrete victim-selection rule — what [`EvictionPolicy::Adaptive`]
/// resolves to at any instant (the fixed policies resolve to themselves).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyChoice {
    /// Evicting by recency.
    Lru,
    /// Evicting by frequency.
    Lfu,
}

impl PolicyChoice {
    /// Stable lowercase name (wire format and CLI tables).
    pub fn name(self) -> &'static str {
        match self {
            PolicyChoice::Lru => "lru",
            PolicyChoice::Lfu => "lfu",
        }
    }

    /// Inverse of [`PolicyChoice::name`].
    pub fn from_name(name: &str) -> Option<PolicyChoice> {
        Some(match name {
            "lru" => PolicyChoice::Lru,
            "lfu" => PolicyChoice::Lfu,
            _ => return None,
        })
    }
}

/// Hit/miss/eviction counters of one cache (or one stripe of one).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// New entries admitted (re-inserting a resident key does not count).
    pub insertions: u64,
    /// Entries sacrificed to the capacity bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Field-wise accumulate (aggregating stripes, namespaces, or shards).
    pub fn absorb(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.insertions += other.insertions;
        self.evictions += other.evictions;
    }

    /// Fraction of lookups served from the cache (0 when never queried).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Default lookups per adaptation window: the controller re-evaluates its
/// choice every this-many lookups of the namespace it governs.
pub const ADAPT_WINDOW: u64 = 256;

/// Default ghost hits within one window that flip the live choice.  8
/// regrets in 256 lookups means ≥3% of all traffic is re-requesting entries
/// the current policy just threw away while the other would have kept them.
pub const ADAPT_SWITCH_THRESHOLD: u64 = 8;

/// Tuning knobs of one adaptive controller, configurable per namespace
/// (`sild --adapt-window`/`--adapt-threshold` sets them daemon-wide; a
/// [`crate::store::StoreConfig`] can shape each namespace independently).
///
/// A smaller window reacts faster to traffic shifts but makes each
/// decision on less evidence; a smaller threshold switches on fainter
/// regret.  The defaults ([`ADAPT_WINDOW`], [`ADAPT_SWITCH_THRESHOLD`])
/// are the constants the policy shipped with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptConfig {
    /// Lookups per adaptation window (clamped to at least 1).
    pub window: u64,
    /// Ghost hits within one window that flip the live choice (clamped to
    /// at least 1).
    pub threshold: u64,
}

impl Default for AdaptConfig {
    fn default() -> Self {
        AdaptConfig {
            window: ADAPT_WINDOW,
            threshold: ADAPT_SWITCH_THRESHOLD,
        }
    }
}

/// The live LRU↔LFU switch of one [`EvictionPolicy::Adaptive`] namespace.
///
/// All counter fields are atomics: lookups from every stripe feed one
/// controller without taking any lock beyond the stripe's own.
#[derive(Debug)]
pub struct AdaptiveController {
    /// The window/threshold this controller evaluates against.
    config: AdaptConfig,
    /// Current choice: `false` = LRU (the starting point), `true` = LFU.
    lfu: AtomicBool,
    /// Lookups since the last window evaluation.
    window_lookups: AtomicU64,
    /// Ghost hits since the last window evaluation.
    window_ghost_hits: AtomicU64,
    /// Lifetime LRU↔LFU switches (doubles as the ghost epoch).
    switches: AtomicU64,
    /// Lifetime ghost hits (regret observed, whether or not it switched).
    ghost_hits: AtomicU64,
}

impl Default for AdaptiveController {
    fn default() -> Self {
        AdaptiveController::new(AdaptConfig::default())
    }
}

impl AdaptiveController {
    /// A controller starting as LRU, evaluating per `config` (window and
    /// threshold are clamped to at least 1).
    pub fn new(config: AdaptConfig) -> AdaptiveController {
        AdaptiveController {
            config: AdaptConfig {
                window: config.window.max(1),
                threshold: config.threshold.max(1),
            },
            lfu: AtomicBool::new(false),
            window_lookups: AtomicU64::new(0),
            window_ghost_hits: AtomicU64::new(0),
            switches: AtomicU64::new(0),
            ghost_hits: AtomicU64::new(0),
        }
    }

    /// The window/threshold in force.
    pub fn config(&self) -> AdaptConfig {
        self.config
    }
    /// The rule currently used to pick victims.
    pub fn choice(&self) -> PolicyChoice {
        if self.lfu.load(Ordering::Relaxed) {
            PolicyChoice::Lfu
        } else {
            PolicyChoice::Lru
        }
    }

    /// How many times the controller has flipped its choice.
    pub fn switches(&self) -> u64 {
        self.switches.load(Ordering::Relaxed)
    }

    /// Lifetime ghost hits (misses on keys the current policy evicted
    /// against the other policy's judgement).
    pub fn ghost_hits(&self) -> u64 {
        self.ghost_hits.load(Ordering::Relaxed)
    }

    /// The epoch new ghost entries belong to; regret only counts while the
    /// regime that caused it is still in charge.
    pub(crate) fn epoch(&self) -> u64 {
        self.switches.load(Ordering::Relaxed)
    }

    /// A miss landed on a remembered ghost of the current epoch.
    pub(crate) fn note_ghost_hit(&self) {
        self.window_ghost_hits.fetch_add(1, Ordering::Relaxed);
        self.ghost_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Bump the lookup clock; at every window boundary, evaluate the
    /// accumulated regret and switch the choice if it crossed the
    /// threshold.  Exactly one caller wins the boundary compare-exchange,
    /// so concurrent lookups evaluate each window once.
    pub(crate) fn on_lookup(&self) {
        let n = self.window_lookups.fetch_add(1, Ordering::Relaxed) + 1;
        if n >= self.config.window
            && self
                .window_lookups
                .compare_exchange(n, 0, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            let regret = self.window_ghost_hits.swap(0, Ordering::Relaxed);
            if regret >= self.config.threshold {
                self.lfu.fetch_xor(true, Ordering::Relaxed);
                self.switches.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for policy in [
            EvictionPolicy::Lru,
            EvictionPolicy::Lfu,
            EvictionPolicy::Adaptive,
        ] {
            assert_eq!(EvictionPolicy::from_name(policy.name()), Some(policy));
        }
        for choice in [PolicyChoice::Lru, PolicyChoice::Lfu] {
            assert_eq!(PolicyChoice::from_name(choice.name()), Some(choice));
        }
        assert_eq!(EvictionPolicy::from_name("mru"), None);
        assert_eq!(PolicyChoice::from_name("adaptive"), None);
    }

    #[test]
    fn hit_rate_handles_the_empty_cache() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        let stats = CacheStats {
            hits: 1,
            misses: 1,
            ..CacheStats::default()
        };
        assert!((stats.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn controller_switches_on_sustained_regret_only() {
        let controller = AdaptiveController::default();
        assert_eq!(controller.choice(), PolicyChoice::Lru);

        // Regret below the threshold: a full window passes, no switch.
        for _ in 0..ADAPT_SWITCH_THRESHOLD - 1 {
            controller.note_ghost_hit();
        }
        for _ in 0..ADAPT_WINDOW {
            controller.on_lookup();
        }
        assert_eq!(controller.choice(), PolicyChoice::Lru);
        assert_eq!(controller.switches(), 0);

        // Regret at the threshold: the next window flips the choice.
        for _ in 0..ADAPT_SWITCH_THRESHOLD {
            controller.note_ghost_hit();
        }
        for _ in 0..ADAPT_WINDOW {
            controller.on_lookup();
        }
        assert_eq!(controller.choice(), PolicyChoice::Lfu);
        assert_eq!(controller.switches(), 1);
        assert_eq!(controller.ghost_hits(), 2 * ADAPT_SWITCH_THRESHOLD - 1);
    }

    /// A custom window/threshold governs exactly when the controller
    /// re-evaluates and how much regret it takes to flip.
    #[test]
    fn controller_honors_a_custom_window_and_threshold() {
        let quick = AdaptiveController::new(AdaptConfig {
            window: 16,
            threshold: 2,
        });
        quick.note_ghost_hit();
        quick.note_ghost_hit();
        for _ in 0..16 {
            quick.on_lookup();
        }
        assert_eq!(
            quick.choice(),
            PolicyChoice::Lfu,
            "2 regrets in a 16-lookup window must flip a threshold-2 controller"
        );

        // The same regret under the default (window 256, threshold 8) does
        // not flip — neither within 16 lookups (no boundary yet) nor at the
        // real window boundary (below threshold).
        let default = AdaptiveController::default();
        assert_eq!(default.config().window, ADAPT_WINDOW);
        assert_eq!(default.config().threshold, ADAPT_SWITCH_THRESHOLD);
        default.note_ghost_hit();
        default.note_ghost_hit();
        for _ in 0..ADAPT_WINDOW {
            default.on_lookup();
        }
        assert_eq!(default.choice(), PolicyChoice::Lru);
    }

    #[test]
    fn degenerate_config_values_are_clamped() {
        let controller = AdaptiveController::new(AdaptConfig {
            window: 0,
            threshold: 0,
        });
        assert_eq!(controller.config().window, 1);
        assert_eq!(controller.config().threshold, 1);
        // One regret, one lookup: the tightest possible controller flips.
        controller.note_ghost_hit();
        controller.on_lookup();
        assert_eq!(controller.choice(), PolicyChoice::Lfu);
    }
}
