//! One typed namespace of the store: a content-addressed, lock-striped,
//! capacity-bounded cache with pluggable eviction.
//!
//! Keys are stable 64-bit fingerprints (see `sil_lang::hash`); values are
//! cheaply cloneable (the store holds `Arc`s).  The namespace is split into
//! `stripes` independently locked segments; a key's stripe is a mix of its
//! fingerprint bits, so concurrent engines contend only when they touch the
//! same sliver of the key space.  Each stripe keeps its own counters; the
//! namespace aggregates them on demand.
//!
//! Lookups and insertions are O(1); eviction is an O(stripe) scan.
//! Capacities here are small (hundreds of analysis results per namespace)
//! and the guarded sections never run an analysis — engines compute outside
//! the lock and only then insert.

use super::policy::{AdaptConfig, AdaptiveController, CacheStats, EvictionPolicy, PolicyChoice};
use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;

/// Default stripe count of a namespace (clamped to its capacity).
pub const DEFAULT_STRIPES: usize = 8;

/// Counter snapshot of one namespace: the aggregate, the per-stripe split,
/// and the live state of its eviction policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NamespaceStats {
    /// All stripes' counters, field-wise summed.
    pub totals: CacheStats,
    /// Resident entries right now.
    pub entries: usize,
    /// The configured capacity bound.
    pub capacity: usize,
    /// The configured policy.
    pub policy: EvictionPolicy,
    /// The victim-selection rule currently in force ([`EvictionPolicy::Lru`]
    /// and [`EvictionPolicy::Lfu`] resolve to themselves; `Adaptive`
    /// reports its live choice).
    pub current: PolicyChoice,
    /// How many times the adaptive controller has flipped LRU↔LFU.
    pub switches: u64,
    /// Misses on keys the current policy evicted against the other
    /// policy's judgement — the adaptive controller's regret signal.
    pub ghost_hits: u64,
    /// Per-stripe counters, in stripe order.
    pub stripes: Vec<CacheStats>,
}

impl NamespaceStats {
    /// Fraction of lookups served from the namespace.
    pub fn hit_rate(&self) -> f64 {
        self.totals.hit_rate()
    }
}

#[derive(Debug)]
struct Entry<V> {
    value: V,
    /// Logical timestamp of the last hit or (re)insertion.
    last_used: u64,
    /// Number of lifetime hits (a re-insert counts as a use).
    uses: u64,
}

#[derive(Debug)]
struct Stripe<V> {
    entries: HashMap<u64, Entry<V>>,
    stats: CacheStats,
    /// Logical clock, bumped on every touch.
    tick: u64,
    /// This stripe's share of the namespace capacity.
    capacity: usize,
    /// Recently evicted keys whose eviction the two base policies
    /// disagreed on, tagged with the adaptive epoch that evicted them.
    /// Insertion order rides in `ghost_order` so the list stays bounded.
    ghosts: HashMap<u64, u64>,
    ghost_order: VecDeque<u64>,
}

impl<V> Stripe<V> {
    fn remember_ghost(&mut self, key: u64, epoch: u64) {
        let cap = self.capacity.max(8);
        // Bound the *order* deque, not the map: ghost hits remove keys
        // from the map without touching the deque, so trimming by map
        // size would let the deque grow without bound on a long-lived
        // daemon.  A popped key whose map entry is already gone (it
        // ghost-hit, or was re-remembered later in the deque) is a no-op.
        while self.ghost_order.len() >= cap {
            match self.ghost_order.pop_front() {
                Some(old) => {
                    self.ghosts.remove(&old);
                }
                None => break,
            }
        }
        if self.ghosts.insert(key, epoch).is_none() {
            self.ghost_order.push_back(key);
        }
    }
}

/// A content-addressed memoization cache — one namespace of the
/// [`super::SummaryStore`], usable standalone (the policy benches drive it
/// directly).
#[derive(Debug)]
pub struct NamespaceCache<V> {
    stripes: Vec<Mutex<Stripe<V>>>,
    capacity: usize,
    policy: EvictionPolicy,
    adaptive: AdaptiveController,
}

impl<V: Clone> NamespaceCache<V> {
    /// A cache holding at most `capacity` entries across
    /// [`DEFAULT_STRIPES`] stripes (`capacity == 0` disables caching
    /// entirely: every lookup misses, every insert is dropped).
    pub fn new(capacity: usize, policy: EvictionPolicy) -> NamespaceCache<V> {
        NamespaceCache::with_stripes(capacity, policy, DEFAULT_STRIPES)
    }

    /// A cache with an explicit stripe count and the default adaptation
    /// window/threshold.
    pub fn with_stripes(
        capacity: usize,
        policy: EvictionPolicy,
        stripes: usize,
    ) -> NamespaceCache<V> {
        NamespaceCache::with_config(capacity, policy, stripes, AdaptConfig::default())
    }

    /// The fully explicit constructor: stripe count (clamped to
    /// `1..=capacity` so every stripe owns at least one slot) and the
    /// adaptive controller's window/threshold.  Stripe count 1 reproduces a
    /// single globally ordered LRU/LFU exactly — tests and policy
    /// simulations that reason about precise victim order use it.  The
    /// adapt config only matters under [`EvictionPolicy::Adaptive`]; the
    /// fixed policies never consult their controller.
    pub fn with_config(
        capacity: usize,
        policy: EvictionPolicy,
        stripes: usize,
        adapt: AdaptConfig,
    ) -> NamespaceCache<V> {
        let stripe_count = stripes.clamp(1, capacity.max(1));
        let base = capacity / stripe_count;
        let remainder = capacity % stripe_count;
        let stripes = (0..stripe_count)
            .map(|index| {
                Mutex::new(Stripe {
                    entries: HashMap::new(),
                    stats: CacheStats::default(),
                    tick: 0,
                    capacity: base + usize::from(index < remainder),
                    ghosts: HashMap::new(),
                    ghost_order: VecDeque::new(),
                })
            })
            .collect();
        NamespaceCache {
            stripes,
            capacity,
            policy,
            adaptive: AdaptiveController::new(adapt),
        }
    }

    fn stripe(&self, key: u64) -> &Mutex<Stripe<V>> {
        // Fibonacci multiplicative mix: the shard router already uses the
        // fingerprint's low bits (`fingerprint % shards`), so stripe
        // selection keys off well-scrambled high bits instead.
        let mixed = key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        &self.stripes[(mixed % self.stripes.len() as u64) as usize]
    }

    /// Look up a fingerprint, recording a hit or miss.
    pub fn get(&self, key: u64) -> Option<V> {
        let adaptive = self.policy == EvictionPolicy::Adaptive;
        let result = {
            let mut stripe = self.stripe(key).lock().unwrap();
            stripe.tick += 1;
            let tick = stripe.tick;
            match stripe.entries.get_mut(&key) {
                Some(entry) => {
                    entry.last_used = tick;
                    entry.uses += 1;
                    let value = entry.value.clone();
                    stripe.stats.hits += 1;
                    Some(value)
                }
                None => {
                    stripe.stats.misses += 1;
                    if adaptive {
                        if let Some(epoch) = stripe.ghosts.remove(&key) {
                            if epoch == self.adaptive.epoch() {
                                self.adaptive.note_ghost_hit();
                            }
                        }
                    }
                    None
                }
            }
        };
        if adaptive {
            self.adaptive.on_lookup();
        }
        result
    }

    /// Look up a fingerprint without recording a hit or miss and without
    /// touching recency/frequency — for internal merge reads that must not
    /// skew the reuse accounting.
    pub fn peek(&self, key: u64) -> Option<V> {
        let stripe = self.stripe(key).lock().unwrap();
        stripe.entries.get(&key).map(|e| e.value.clone())
    }

    /// Every resident fingerprint, sorted — the store's peer-inventory
    /// digest.  Stripes are snapshotted one at a time, so the set is
    /// consistent per stripe but only approximately consistent across
    /// them; gossip tolerates that (every advertised key is re-verified
    /// at fetch time anyway).
    pub fn keys(&self) -> Vec<u64> {
        let mut keys = Vec::with_capacity(self.len());
        for stripe in &self.stripes {
            let stripe = stripe.lock().unwrap();
            keys.extend(stripe.entries.keys().copied());
        }
        keys.sort_unstable();
        keys
    }

    /// Insert a value, evicting per policy if the key's stripe is full.
    ///
    /// Inserting an already-present key refreshes the entry in place —
    /// value, recency, *and* frequency — without growing the cache,
    /// double-counting the insertion, or evicting anything.  (The
    /// pre-store `ContentCache` refreshed recency but not frequency, so
    /// under LFU a busily re-inserted entry looked idle and was the first
    /// victim; `reinsert_refreshes_frequency_not_just_recency` below is
    /// the regression test.)
    pub fn insert(&self, key: u64, value: V) {
        if self.capacity == 0 {
            return;
        }
        let mut stripe = self.stripe(key).lock().unwrap();
        self.insert_locked(&mut stripe, key, value);
    }

    /// Atomically merge a value into the cache: `merge` sees the resident
    /// value (if any) and produces the replacement, all under the key's
    /// stripe lock, so concurrent read-merge-write cycles cannot drop each
    /// other's contributions.  The walk-record namespace uses this to fold
    /// freshly recorded walks into a cone's retained set.
    pub fn merge(&self, key: u64, merge: impl FnOnce(Option<&V>) -> V) {
        if self.capacity == 0 {
            return;
        }
        let mut stripe = self.stripe(key).lock().unwrap();
        let merged = merge(stripe.entries.get(&key).map(|e| &e.value));
        self.insert_locked(&mut stripe, key, merged);
    }

    fn insert_locked(&self, stripe: &mut Stripe<V>, key: u64, value: V) {
        stripe.tick += 1;
        let tick = stripe.tick;
        if let Some(existing) = stripe.entries.get_mut(&key) {
            existing.value = value;
            existing.last_used = tick;
            existing.uses += 1;
            return;
        }
        if stripe.entries.len() >= stripe.capacity {
            let lru_victim = |stripe: &Stripe<V>| {
                stripe
                    .entries
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| *k)
            };
            let lfu_victim = |stripe: &Stripe<V>| {
                stripe
                    .entries
                    .iter()
                    .min_by_key(|(_, e)| (e.uses, e.last_used))
                    .map(|(k, _)| *k)
            };
            if self.policy == EvictionPolicy::Adaptive {
                // Adaptive needs both candidates: a *contested* eviction
                // (the rules disagree) is the evidence its ghost list
                // learns from; when both rules agree there is nothing to
                // learn.
                let lru = lru_victim(stripe);
                let lfu = lfu_victim(stripe);
                let victim = match self.adaptive.choice() {
                    PolicyChoice::Lru => lru,
                    PolicyChoice::Lfu => lfu,
                };
                if let Some(victim) = victim {
                    stripe.entries.remove(&victim);
                    stripe.stats.evictions += 1;
                    if lru != lfu {
                        let epoch = self.adaptive.epoch();
                        stripe.remember_ghost(victim, epoch);
                    }
                }
            } else {
                // Fixed policies pay for exactly one victim scan.
                let victim = match self.current_choice() {
                    PolicyChoice::Lru => lru_victim(stripe),
                    PolicyChoice::Lfu => lfu_victim(stripe),
                };
                if let Some(victim) = victim {
                    stripe.entries.remove(&victim);
                    stripe.stats.evictions += 1;
                }
            }
        }
        stripe.entries.insert(
            key,
            Entry {
                value,
                last_used: tick,
                uses: 0,
            },
        );
        stripe.stats.insertions += 1;
    }

    /// Current number of resident entries.
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().unwrap().entries.len())
            .sum()
    }

    /// Whether no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The configured eviction policy.
    pub fn policy(&self) -> EvictionPolicy {
        self.policy
    }

    /// The adaptive controller's window/threshold (meaningful under
    /// [`EvictionPolicy::Adaptive`]; inert otherwise).
    pub fn adapt_config(&self) -> AdaptConfig {
        self.adaptive.config()
    }

    /// The victim-selection rule currently in force.
    pub fn current_choice(&self) -> PolicyChoice {
        match self.policy {
            EvictionPolicy::Lru => PolicyChoice::Lru,
            EvictionPolicy::Lfu => PolicyChoice::Lfu,
            EvictionPolicy::Adaptive => self.adaptive.choice(),
        }
    }

    /// Aggregate counters only (cheaper than [`NamespaceCache::stats`]).
    pub fn totals(&self) -> CacheStats {
        let mut totals = CacheStats::default();
        for stripe in &self.stripes {
            totals.absorb(&stripe.lock().unwrap().stats);
        }
        totals
    }

    /// Full snapshot: aggregate, per-stripe counters, and policy state.
    pub fn stats(&self) -> NamespaceStats {
        let mut totals = CacheStats::default();
        let mut entries = 0;
        let mut stripes = Vec::with_capacity(self.stripes.len());
        for stripe in &self.stripes {
            let stripe = stripe.lock().unwrap();
            totals.absorb(&stripe.stats);
            entries += stripe.entries.len();
            stripes.push(stripe.stats);
        }
        NamespaceStats {
            totals,
            entries,
            capacity: self.capacity,
            policy: self.policy,
            current: self.current_choice(),
            switches: self.adaptive.switches(),
            ghost_hits: self.adaptive.ghost_hits(),
            stripes,
        }
    }

    /// Drop every entry and ghost (the counters survive).
    pub fn clear(&self) {
        for stripe in &self.stripes {
            let mut stripe = stripe.lock().unwrap();
            stripe.entries.clear();
            stripe.ghosts.clear();
            stripe.ghost_order.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Single-stripe cache: globally ordered eviction, as the pre-store
    /// `ContentCache` behaved.
    fn cache<V: Clone>(capacity: usize, policy: EvictionPolicy) -> NamespaceCache<V> {
        NamespaceCache::with_stripes(capacity, policy, 1)
    }

    #[test]
    fn hit_miss_accounting() {
        let cache = cache(4, EvictionPolicy::Lru);
        assert_eq!(cache.get(1), None);
        cache.insert(1, "one");
        assert_eq!(cache.get(1), Some("one"));
        let stats = cache.stats();
        assert_eq!(stats.totals.hits, 1);
        assert_eq!(stats.totals.misses, 1);
        assert_eq!(stats.totals.insertions, 1);
        assert_eq!(stats.totals.evictions, 0);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn peek_does_not_touch_stats_or_recency() {
        let cache = cache(2, EvictionPolicy::Lru);
        cache.insert(1, 1);
        cache.insert(2, 2);
        assert_eq!(cache.peek(1), Some(1));
        assert_eq!(cache.totals().hits, 0);
        // peek(1) must not have refreshed 1: it is still the LRU victim.
        cache.insert(3, 3);
        assert_eq!(cache.peek(1), None, "1 was evicted despite the peek");
        assert_eq!(cache.peek(2), Some(2));
    }

    #[test]
    fn lru_evicts_the_stalest_entry() {
        let cache = cache(2, EvictionPolicy::Lru);
        cache.insert(1, 1);
        cache.insert(2, 2);
        cache.get(1); // 2 is now the least recently used
        cache.insert(3, 3);
        assert_eq!(cache.get(2), None, "2 should have been evicted");
        assert_eq!(cache.get(1), Some(1));
        assert_eq!(cache.get(3), Some(3));
        assert_eq!(cache.totals().evictions, 1);
    }

    #[test]
    fn lfu_keeps_the_popular_entry() {
        let cache = cache(2, EvictionPolicy::Lfu);
        cache.insert(1, 1);
        cache.insert(2, 2);
        cache.get(1);
        cache.get(1);
        cache.get(2); // 1 has 2 uses, 2 has 1 use
        cache.insert(3, 3);
        assert_eq!(cache.get(2), None, "least-frequently-used entry evicted");
        assert_eq!(cache.get(1), Some(1));
    }

    #[test]
    fn capacity_bound_holds_across_stripes() {
        for stripes in [1, 3, 8] {
            let cache: NamespaceCache<u64> =
                NamespaceCache::with_stripes(12, EvictionPolicy::Lru, stripes);
            for key in 0..300u64 {
                cache.insert(key, key);
            }
            assert_eq!(cache.len(), 12, "{stripes} stripes");
            assert_eq!(cache.totals().evictions, 288, "{stripes} stripes");
            let stats = cache.stats();
            assert_eq!(stats.stripes.len(), stripes.min(12));
            assert_eq!(stats.stripes.iter().map(|s| s.insertions).sum::<u64>(), 300);
        }
    }

    #[test]
    fn stripe_count_is_clamped_to_capacity() {
        let tiny: NamespaceCache<u64> = NamespaceCache::with_stripes(2, EvictionPolicy::Lru, 64);
        assert_eq!(tiny.stats().stripes.len(), 2);
        for key in 0..50u64 {
            tiny.insert(key, key);
        }
        assert!(tiny.len() <= 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache: NamespaceCache<u64> = NamespaceCache::new(0, EvictionPolicy::Lru);
        cache.insert(1, 1);
        cache.merge(2, |_| 2);
        assert_eq!(cache.get(1), None);
        assert_eq!(cache.len(), 0);
    }

    /// The satellite regression test: re-inserting a resident key must
    /// refresh its recency *and* frequency bookkeeping in place — no entry
    /// growth, no double-counted insertion, no eviction, and (the old
    /// `ContentCache` bug) no losing the entry's claim to be busy under
    /// LFU.
    #[test]
    fn reinsert_refreshes_frequency_not_just_recency() {
        let cache = cache(2, EvictionPolicy::Lfu);
        cache.insert(1, 10);
        cache.insert(2, 20);
        cache.get(2); // 2 has one hit, 1 has none…
        cache.insert(1, 11);
        cache.insert(1, 12); // …but 1 was re-inserted twice: uses 2 vs 1
        assert_eq!(cache.len(), 2, "re-inserts must not grow the cache");
        let stats = cache.totals();
        assert_eq!(stats.insertions, 2, "re-inserts are not new insertions");
        assert_eq!(stats.evictions, 0);

        // Under LFU the re-inserted entry is now the *more* frequent one:
        // inserting a third key must evict 2, not 1.
        cache.insert(3, 30);
        assert_eq!(cache.peek(1), Some(12), "busy entry survives, refreshed");
        assert_eq!(cache.peek(2), None, "idle entry is the victim");
    }

    #[test]
    fn reinsert_refreshes_recency_under_lru() {
        let cache = cache(2, EvictionPolicy::Lru);
        cache.insert(1, 1);
        cache.insert(2, 2);
        cache.insert(1, 10); // 2 is now the stalest
        cache.insert(3, 3);
        assert_eq!(cache.peek(1), Some(10));
        assert_eq!(cache.peek(2), None, "2 was the LRU victim");
        assert_eq!(cache.totals().evictions, 1);
    }

    #[test]
    fn merge_sees_the_resident_value_and_replaces_it() {
        let cache: NamespaceCache<Vec<u64>> = cache(4, EvictionPolicy::Lru);
        cache.merge(7, |existing| {
            assert!(existing.is_none());
            vec![1]
        });
        cache.merge(7, |existing| {
            let mut merged = existing.cloned().unwrap();
            merged.push(2);
            merged
        });
        assert_eq!(cache.get(7), Some(vec![1, 2]));
        assert_eq!(cache.totals().insertions, 1, "second merge was a refresh");
    }

    /// The ROADMAP eviction-policy experiment, in miniature: under a
    /// Zipf-skewed request stream (a few hot programs, a long tail) a
    /// small LFU cache keeps the hot set resident and beats LRU — and the
    /// adaptive policy, starting as LRU, notices its own regret via ghost
    /// hits and switches itself to LFU.
    #[test]
    fn adaptive_converges_to_lfu_under_zipf_skew() {
        use rand::distributions::{Distribution, Zipf};
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let simulate = |policy: EvictionPolicy| {
            let cache = cache(16, policy);
            let zipf = Zipf::new(256, 1.2).unwrap();
            let mut rng = StdRng::seed_from_u64(42);
            for _ in 0..20_000 {
                let key = zipf.sample(&mut rng);
                if cache.get(key).is_none() {
                    cache.insert(key, key);
                }
            }
            cache
        };

        let lru = simulate(EvictionPolicy::Lru).totals().hit_rate();
        let lfu = simulate(EvictionPolicy::Lfu).totals().hit_rate();
        assert!(
            lfu > lru,
            "LFU must win under skew: lfu={lfu:.3} lru={lru:.3}"
        );
        assert!(lfu > 0.5, "the hot set must mostly hit: {lfu:.3}");

        let adaptive = simulate(EvictionPolicy::Adaptive);
        let stats = adaptive.stats();
        assert_eq!(
            stats.current,
            PolicyChoice::Lfu,
            "adaptive must discover LFU: {stats:?}"
        );
        assert!(stats.switches >= 1);
        assert!(stats.ghost_hits >= super::super::policy::ADAPT_SWITCH_THRESHOLD);
        let rate = stats.hit_rate();
        assert!(
            rate > lru,
            "adaptive must beat pure LRU once switched: adaptive={rate:.3} lru={lru:.3}"
        );
    }

    /// Ghost bookkeeping must stay bounded on a long-lived cache: ghost
    /// *hits* remove keys from the ghost map without touching the order
    /// deque, so the deque — not the map — is what the trimming loop has
    /// to bound (regression test for an unbounded-growth bug).
    #[test]
    fn ghost_list_stays_bounded_under_sustained_ghost_hits() {
        let cache = cache(4, EvictionPolicy::Adaptive);
        // Each phase makes one key frequent, then lets a sweep of one-off
        // keys push it out by recency: at the eviction the LRU victim (the
        // frequent key) and the LFU victim (a fresh zero-use key) disagree,
        // so a ghost is recorded; the frequent key's return is a ghost hit
        // (draining the map but, before the fix, never the deque).
        for phase in 0..500u64 {
            let hot = 1_000_000 + phase;
            for _ in 0..8 {
                if cache.get(hot).is_none() {
                    cache.insert(hot, hot);
                }
            }
            for sweep in 0..6u64 {
                let key = phase * 10 + sweep;
                if cache.get(key).is_none() {
                    cache.insert(key, key);
                }
            }
            cache.get(hot);
        }
        let bound = cache.capacity().max(8);
        for stripe in &cache.stripes {
            let stripe = stripe.lock().unwrap();
            assert!(
                stripe.ghost_order.len() <= bound,
                "ghost order deque leaked: {} entries (bound {bound})",
                stripe.ghost_order.len()
            );
            assert!(stripe.ghosts.len() <= stripe.ghost_order.len());
        }
        assert!(
            cache.stats().ghost_hits > 0,
            "the stream must actually exercise ghost hits"
        );
    }

    /// A tight window/threshold adapts within a stream far too short for
    /// the defaults: a 90-lookup hot-key-plus-sweep pattern makes a
    /// (window 16, threshold 1) cache observe regret and switch (it flips
    /// to LFU once sweeps evict the hot key, and may legitimately flip
    /// back once LFU's frozen hot set starts hurting the newer phases),
    /// while the default (window 256) cache never even reaches a window
    /// boundary.
    #[test]
    fn tight_adapt_config_flips_on_a_short_stream() {
        let tight: NamespaceCache<u64> = NamespaceCache::with_config(
            4,
            EvictionPolicy::Adaptive,
            1,
            AdaptConfig {
                window: 16,
                threshold: 1,
            },
        );
        assert_eq!(tight.adapt_config().window, 16);
        let default: NamespaceCache<u64> = cache(4, EvictionPolicy::Adaptive);
        for cache in [&tight, &default] {
            for phase in 0..6u64 {
                let hot = 1_000_000 + phase;
                for _ in 0..8 {
                    if cache.get(hot).is_none() {
                        cache.insert(hot, hot);
                    }
                }
                for sweep in 0..6u64 {
                    let key = phase * 10 + sweep;
                    if cache.get(key).is_none() {
                        cache.insert(key, key);
                    }
                }
                cache.get(hot);
            }
        }
        let tight_stats = tight.stats();
        assert!(
            tight_stats.switches >= 1,
            "a 16-lookup window must adapt within 90 lookups: {tight_stats:?}"
        );
        assert!(tight_stats.ghost_hits >= 1);
        let default_stats = default.stats();
        assert_eq!(
            (default_stats.current, default_stats.switches),
            (PolicyChoice::Lru, 0),
            "90 lookups never reach a 256-lookup window boundary"
        );
    }

    /// Under a recency-friendly stream (a sliding window of keys, no
    /// stable hot set) the adaptive policy has no reason to leave LRU.
    #[test]
    fn adaptive_stays_lru_under_scans() {
        let cache = cache(16, EvictionPolicy::Adaptive);
        for round in 0..40u64 {
            for offset in 0..64u64 {
                let key = round * 8 + offset; // windows overlap heavily
                if cache.get(key).is_none() {
                    cache.insert(key, key);
                }
            }
        }
        assert_eq!(cache.current_choice(), PolicyChoice::Lru);
    }
}
