//! Small helpers shared by the `silp` and `sild` command lines.
//!
//! Both binaries reject unknown flags with a non-zero exit; when a typo is
//! close to a real flag, the error carries a "did you mean" hint.

/// Levenshtein edit distance (insert/delete/substitute, all cost 1).
pub fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut previous: Vec<usize> = (0..=b.len()).collect();
    let mut current = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        current[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let substitute = previous[j] + usize::from(ca != cb);
            current[j + 1] = substitute
                .min(previous[j + 1] + 1) // delete
                .min(current[j] + 1); // insert
        }
        std::mem::swap(&mut previous, &mut current);
    }
    previous[b.len()]
}

/// The known flag closest to `unknown`, if it is close enough to be a
/// plausible typo (edit distance ≤ 3 and under half the flag's length).
pub fn suggest_flag<'a>(unknown: &str, known: &[&'a str]) -> Option<&'a str> {
    known
        .iter()
        .map(|flag| (edit_distance(unknown, flag), *flag))
        .min()
        .filter(|(distance, flag)| *distance <= 3 && *distance * 2 <= flag.len())
        .map(|(_, flag)| flag)
}

/// The standard unknown-flag error message, with the hint when one exists.
pub fn unknown_flag_error(unknown: &str, known: &[&str]) -> String {
    match suggest_flag(unknown, known) {
        Some(hint) => format!("unknown option {unknown} (did you mean {hint}?)"),
        None => format!("unknown option {unknown}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("abc", ""), 3);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("--exeucte", "--execute"), 2);
    }

    #[test]
    fn close_typos_get_a_hint() {
        let known = ["--execute", "--json", "--workload", "--connect"];
        assert_eq!(suggest_flag("--exeucte", &known), Some("--execute"));
        assert_eq!(suggest_flag("--jsno", &known), Some("--json"));
        assert_eq!(suggest_flag("--conect", &known), Some("--connect"));
        assert_eq!(suggest_flag("--frobnicate", &known), None);
        assert!(unknown_flag_error("--jsno", &known).contains("did you mean --json?"));
        assert!(!unknown_flag_error("--zzzzzzz", &known).contains("did you mean"));
    }
}
