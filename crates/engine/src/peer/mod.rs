//! Summary-cache peering: a ring of `sild` daemons that gossip digest
//! inventories and fetch each other's cache misses before recomputing.
//!
//! The NDN caching literature (see PAPERS.md) treats a network of caches
//! as one storage fabric: content is fetched from the nearest replica and
//! admitted locally per the node's own policy.  This module applies that
//! model to analysis summaries.  A [`PeerRing`] holds typed handles to N
//! peer daemons; an anti-entropy gossip loop ([`gossip`]) periodically
//! exchanges compact inventories (store generation + held fingerprints)
//! over the additive `peer_inventory` protocol kind, and the store's miss
//! path calls into [`fetch`] so a cone analyzed anywhere in the cluster is
//! a warm hit everywhere — memory → disk → **peer** → recompute.
//!
//! Trust is identical to the disk tier: a fetched body is the same codec
//! document the durable tier persists, and it is re-verified (stored
//! fingerprint, re-parsed source fingerprint, recomputed analysis digest)
//! before admission, so a corrupt or lying peer degrades to a miss, never
//! to a wrong answer.  Robustness is built in: per-fetch deadlines reuse
//! the [`RemoteService`] timeout plumbing, a failure-count breaker
//! quarantines a dead peer and probes it back on expiry, single-flight
//! dedup collapses a thundering herd on one cone into one fetch, and a
//! peer answers fetches from its own store only — never by recomputing,
//! never by re-forwarding to *its* peers — so fetch chains cannot loop.

pub mod fetch;
pub mod gossip;

use crate::service::proto::PeerNamespace;
use crate::service::{Addr, RemoteService};
use silobs::{HistogramSnapshot, ShardedHistogram, Tracer};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Peering parameters.  The defaults suit a LAN cluster; tests shrink the
/// intervals to keep breaker trips and probes fast.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerConfig {
    /// The peer daemons to gossip with and fetch from.
    pub peers: Vec<Addr>,
    /// How often the gossip loop exchanges inventories.
    pub gossip_interval: Duration,
    /// Per-fetch deadline, applied as the [`RemoteService`] connect, read,
    /// and write timeout on every peer connection.
    pub fetch_timeout: Duration,
    /// Consecutive transport failures before a peer is quarantined.
    pub failure_threshold: u32,
    /// How long a quarantined peer sits out before the gossip loop probes
    /// it again.
    pub quarantine: Duration,
}

impl PeerConfig {
    pub fn new(peers: Vec<Addr>) -> PeerConfig {
        PeerConfig {
            peers,
            gossip_interval: Duration::from_secs(2),
            fetch_timeout: Duration::from_secs(2),
            failure_threshold: 3,
            quarantine: Duration::from_secs(10),
        }
    }

    pub fn with_gossip_interval(mut self, interval: Duration) -> PeerConfig {
        self.gossip_interval = interval;
        self
    }

    pub fn with_fetch_timeout(mut self, timeout: Duration) -> PeerConfig {
        self.fetch_timeout = timeout;
        self
    }

    pub fn with_failure_threshold(mut self, threshold: u32) -> PeerConfig {
        self.failure_threshold = threshold.max(1);
        self
    }

    pub fn with_quarantine(mut self, quarantine: Duration) -> PeerConfig {
        self.quarantine = quarantine;
        self
    }
}

/// Counter snapshot of the peering tier, carried as the optional `peer`
/// member of a `stats` response.  The fetch-side counters come from the
/// ring; `serves`/`bytes_out` count what this daemon answered *to* its
/// peers and live on the store, so a daemon that only serves (no `--peer`
/// flags of its own) still reports them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeerStats {
    /// Peers configured in the ring.
    pub peers: u64,
    /// Peers currently quarantined by the failure breaker.
    pub quarantined: u64,
    /// Store misses served by a verified peer fetch.
    pub hits: u64,
    /// Fetches no live peer could satisfy (the miss path falls through to
    /// recompute).
    pub misses: u64,
    /// Completed gossip rounds.
    pub gossip_rounds: u64,
    /// Times the breaker moved a peer into quarantine.
    pub quarantines: u64,
    /// Reply bytes read off the wire from peers (inventories + bodies),
    /// as counted by the transport — not a re-encoding estimate.
    pub bytes_in: u64,
    /// Entry bytes this daemon served to fetching peers.
    pub bytes_out: u64,
    /// Peer inventory/fetch requests this daemon answered.
    pub serves: u64,
    /// Remote fingerprints currently advertised to this ring by gossip.
    pub known_keys: u64,
}

/// Everything the ring knows about one peer, guarded by one lock: the
/// cached connection, the breaker state, and the advertised inventory.
#[derive(Debug, Default)]
pub(crate) struct PeerInner {
    pub(crate) conn: Option<RemoteService>,
    /// Consecutive transport failures since the last success.
    pub(crate) failures: u32,
    /// `Some(t)` while quarantined; an attempt after `t` is the probe.
    pub(crate) quarantined_until: Option<Instant>,
    /// The peer answered a peer kind with `malformed`: it is alive but
    /// does not speak the peering extension.  Not a breaker event.
    pub(crate) unsupported: bool,
    /// The store generation the advertised sets belong to.  Fetch replies
    /// carry the serving store's current generation; on mismatch the
    /// advertised sets are discarded as a stale snapshot (see
    /// [`fetch`]).
    pub(crate) generation: u64,
    pub(crate) programs: HashSet<u64>,
    pub(crate) summaries: HashSet<u64>,
}

impl PeerInner {
    /// Quarantined right now (the breaker is open and not yet due for a
    /// probe)?
    pub(crate) fn in_quarantine(&self, now: Instant) -> bool {
        self.quarantined_until.is_some_and(|until| now < until)
    }

    pub(crate) fn advertises(&self, namespace: PeerNamespace, key: u64) -> bool {
        match namespace {
            PeerNamespace::Programs => self.programs.contains(&key),
            PeerNamespace::Summaries => self.summaries.contains(&key),
        }
    }
}

#[derive(Debug)]
pub(crate) struct Peer {
    pub(crate) addr: Addr,
    pub(crate) inner: Mutex<PeerInner>,
}

#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub(crate) hits: AtomicU64,
    pub(crate) misses: AtomicU64,
    pub(crate) gossip_rounds: AtomicU64,
    pub(crate) quarantines: AtomicU64,
    pub(crate) bytes_in: AtomicU64,
}

/// Shared stop signal between the ring and its gossip thread.
#[derive(Debug, Default)]
pub(crate) struct Stop {
    pub(crate) flag: Mutex<bool>,
    pub(crate) wake: Condvar,
}

/// Typed handles to N peer daemons plus the machinery that keeps them
/// useful: gossip bookkeeping, the fetch path, the breaker, and counters.
///
/// The ring never touches the local [`crate::store::SummaryStore`] — the
/// store calls *into* the ring on a miss and admits what comes back — so
/// there is no reference cycle and serving a peer request cannot recurse
/// into another peer request.
#[derive(Debug)]
pub struct PeerRing {
    pub(crate) config: PeerConfig,
    pub(crate) peers: Vec<Peer>,
    pub(crate) counters: Counters,
    pub(crate) fetch_us: ShardedHistogram,
    pub(crate) flights: Mutex<HashMap<(PeerNamespace, u64), Arc<fetch::Flight>>>,
    pub(crate) tracer: Arc<Tracer>,
    pub(crate) stop: Arc<Stop>,
    gossip_thread: Mutex<Option<JoinHandle<()>>>,
}

impl PeerRing {
    /// A ring over `config.peers`, recording spans into `tracer`, with the
    /// gossip loop running.  Call [`PeerRing::shutdown`] (or drop the last
    /// `Arc`) to stop the loop.
    pub fn spawn(config: PeerConfig, tracer: Arc<Tracer>) -> Arc<PeerRing> {
        let ring = Arc::new(PeerRing::new(config, tracer));
        let handle = gossip::spawn_loop(&ring);
        *ring.gossip_thread.lock().unwrap() = Some(handle);
        ring
    }

    /// A ring without the background loop — tests drive gossip explicitly
    /// via [`PeerRing::gossip_once`].
    pub fn new(config: PeerConfig, tracer: Arc<Tracer>) -> PeerRing {
        let peers = config
            .peers
            .iter()
            .map(|addr| Peer {
                addr: addr.clone(),
                inner: Mutex::new(PeerInner::default()),
            })
            .collect();
        PeerRing {
            config,
            peers,
            counters: Counters::default(),
            fetch_us: ShardedHistogram::default(),
            flights: Mutex::new(HashMap::new()),
            tracer,
            stop: Arc::new(Stop::default()),
            gossip_thread: Mutex::new(None),
        }
    }

    pub fn config(&self) -> &PeerConfig {
        &self.config
    }

    pub fn peer_count(&self) -> usize {
        self.peers.len()
    }

    /// Stop the gossip loop and join it.  Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        {
            let mut stop = self.stop.flag.lock().unwrap();
            *stop = true;
        }
        self.stop.wake.notify_all();
        if let Some(handle) = self.gossip_thread.lock().unwrap().take() {
            // When the last `Arc<PeerRing>` is the gossip loop's own
            // temporary upgrade, this Drop-driven shutdown runs *on* the
            // gossip thread — joining its own handle would deadlock, so
            // detach instead (the loop is already on its way out: it only
            // reaches here by returning from `gossip_once`).
            if handle.thread().id() != std::thread::current().id() {
                let _ = handle.join();
            }
        }
    }

    /// The fetch-latency distribution, for the `store.peer.fetch_us`
    /// histogram in metrics responses.
    pub fn fetch_us(&self) -> HistogramSnapshot {
        self.fetch_us.snapshot()
    }

    /// Counter snapshot.  `serves`/`bytes_out` are store-side numbers the
    /// caller passes in (see [`PeerStats`]).
    pub fn stats(&self, serves: u64, bytes_out: u64) -> PeerStats {
        let now = Instant::now();
        let mut quarantined = 0u64;
        let mut known_keys = 0u64;
        for peer in &self.peers {
            let inner = peer.inner.lock().unwrap();
            if inner.in_quarantine(now) {
                quarantined += 1;
            }
            known_keys += (inner.programs.len() + inner.summaries.len()) as u64;
        }
        PeerStats {
            peers: self.peers.len() as u64,
            quarantined,
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            gossip_rounds: self.counters.gossip_rounds.load(Ordering::Relaxed),
            quarantines: self.counters.quarantines.load(Ordering::Relaxed),
            bytes_in: self.counters.bytes_in.load(Ordering::Relaxed),
            bytes_out,
            serves,
            known_keys,
        }
    }
}

impl Drop for PeerRing {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_ring(peers: Vec<Addr>) -> PeerRing {
        PeerRing::new(PeerConfig::new(peers), Arc::new(Tracer::default()))
    }

    #[test]
    fn config_builders_clamp_and_apply() {
        let config = PeerConfig::new(vec![])
            .with_gossip_interval(Duration::from_millis(50))
            .with_fetch_timeout(Duration::from_millis(200))
            .with_failure_threshold(0)
            .with_quarantine(Duration::from_millis(100));
        assert_eq!(config.gossip_interval, Duration::from_millis(50));
        assert_eq!(config.fetch_timeout, Duration::from_millis(200));
        assert_eq!(config.failure_threshold, 1, "threshold clamps to >= 1");
        assert_eq!(config.quarantine, Duration::from_millis(100));
    }

    #[test]
    fn empty_ring_reports_zeroed_stats() {
        let ring = test_ring(vec![]);
        let stats = ring.stats(0, 0);
        assert_eq!(stats, PeerStats::default());
    }

    #[test]
    fn quarantine_window_is_instant_bounded() {
        let mut inner = PeerInner::default();
        let now = Instant::now();
        assert!(!inner.in_quarantine(now), "fresh peers are live");
        inner.quarantined_until = Some(now + Duration::from_secs(5));
        assert!(inner.in_quarantine(now));
        assert!(
            !inner.in_quarantine(now + Duration::from_secs(6)),
            "an expired quarantine invites the probe"
        );
    }

    #[test]
    fn advertised_sets_are_per_namespace() {
        let mut inner = PeerInner::default();
        inner.programs.insert(7);
        inner.summaries.insert(9);
        assert!(inner.advertises(PeerNamespace::Programs, 7));
        assert!(!inner.advertises(PeerNamespace::Programs, 9));
        assert!(inner.advertises(PeerNamespace::Summaries, 9));
        assert!(!inner.advertises(PeerNamespace::Summaries, 7));
    }
}
