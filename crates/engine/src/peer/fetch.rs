//! The peer fetch path: single-flight, deadline-bounded, breaker-guarded
//! retrieval of one cache entry from the ring.
//!
//! The store calls [`PeerRing::fetch_program`]/[`PeerRing::fetch_summaries`]
//! after both local tiers miss.  Candidate peers are ordered by gossip
//! knowledge — peers advertising the key first, every other live peer as
//! fallback — and each is asked over a connection whose connect, read, and
//! write timeouts are all the configured fetch deadline, so a hung peer
//! costs one bounded wait, never a stall.  A returned body is decoded and
//! verified with the durable tier's own codec before it counts as a hit;
//! a body that fails verification is discarded and the next peer is tried.
//!
//! Every `peer_entry` reply also carries the serving store's generation,
//! which is reconciled against the gossiped inventory snapshot: a
//! mismatch means the peer cleared (or restarted) since it advertised,
//! so its whole advertised key set is discarded rather than trusted; a
//! matching generation with an empty body means the one key was evicted
//! and only that advertisement is dropped.
//!
//! Single-flight: concurrent misses on one `(namespace, key)` elect a
//! leader; followers block on the leader's `Flight` slot and share its
//! verified result, so a thundering herd on one hot cone issues exactly
//! one network fetch.  The leader publishes through a drop guard — if it
//! unwinds (or is torn down) mid-fetch, the guard publishes a miss and
//! clears the flight entry, so followers can never hang on a dead leader
//! and the key never wedges.  Followers additionally bound their wait at
//! the leader's worst-case deadline across all candidates.

use super::{Peer, PeerRing};
use crate::service::proto::{ErrorKind, PeerNamespace, Request, Response, TraceSpan};
use crate::service::RemoteService;
use crate::store::durable::codec;
use crate::store::SummaryTable;
use crate::AnalyzedProgram;
use std::collections::hash_map::Entry;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A verified entry fetched from a peer.
#[derive(Debug, Clone)]
pub(crate) enum Payload {
    Program(Arc<AnalyzedProgram>),
    Summaries(SummaryTable),
}

/// The single-flight rendezvous for one in-progress fetch: the leader
/// publishes its result (hit or miss) and every follower clones it.
#[derive(Debug, Default)]
pub(crate) struct Flight {
    slot: Mutex<Option<Option<Payload>>>,
    ready: Condvar,
}

impl Flight {
    /// Wait for the leader's result, at most `limit` — a follower whose
    /// leader has silently died (see [`FlightGuard`]) degrades to a miss
    /// instead of waiting forever.
    fn wait(&self, limit: Duration) -> Option<Payload> {
        let deadline = Instant::now().checked_add(limit);
        let mut slot = self.slot.lock().unwrap();
        while slot.is_none() {
            match deadline {
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return None;
                    }
                    let (guard, _) = self.ready.wait_timeout(slot, deadline - now).unwrap();
                    slot = guard;
                }
                // A limit too large to represent as an instant is
                // effectively unbounded.
                None => slot = self.ready.wait(slot).unwrap(),
            }
        }
        slot.clone().unwrap()
    }

    fn publish(&self, result: Option<Payload>) {
        *self.slot.lock().unwrap() = Some(result);
        self.ready.notify_all();
    }
}

/// Completes the leader's flight exactly once, however the leader exits:
/// [`FlightGuard::complete`] publishes the real result, and dropping an
/// incomplete guard (the leader panicked or was otherwise torn down)
/// publishes a miss — either way the flights-map entry is removed, so
/// followers always wake and a later fetch of the same key starts fresh.
struct FlightGuard<'a> {
    ring: &'a PeerRing,
    key: (PeerNamespace, u64),
    flight: Arc<Flight>,
    done: bool,
}

impl FlightGuard<'_> {
    fn complete(mut self, result: Option<Payload>) {
        self.done = true;
        self.finish(result);
    }

    fn finish(&self, result: Option<Payload>) {
        self.flight.publish(result);
        // `lock().ok()`: this also runs during unwinding, where a
        // poisoned map must not turn a panic into an abort.
        if let Ok(mut flights) = self.ring.flights.lock() {
            flights.remove(&self.key);
        }
    }
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if !self.done {
            self.finish(None);
        }
    }
}

/// What one request/response exchange with a peer amounted to.
pub(crate) enum Exchange {
    /// A well-formed reply from a live, peering-capable daemon.
    Reply(Box<Response>),
    /// Transport failure (or active quarantine); the breaker was updated.
    Failed,
    /// The daemon is alive but answered the peering kind with an error:
    /// it predates the extension or serves with `--no-peer-serve`.  Not a
    /// breaker event — the daemon is healthy, just not a cache peer.
    Unsupported,
}

/// One exchange with `peer`, reusing its cached connection when possible.
/// The connection is taken out of the peer's lock for the duration of the
/// network call, so stats snapshots never block behind a slow peer.
pub(crate) fn exchange(ring: &PeerRing, peer: &Peer, request: Request) -> Exchange {
    let conn = {
        let mut inner = peer.inner.lock().unwrap();
        if inner.in_quarantine(Instant::now()) {
            return Exchange::Failed;
        }
        match inner.conn.take() {
            Some(conn) => conn,
            None => {
                drop(inner);
                match RemoteService::dial_with_timeout(&peer.addr, Some(ring.config.fetch_timeout))
                {
                    Ok(conn) => conn,
                    Err(_) => {
                        note_failure(ring, peer);
                        return Exchange::Failed;
                    }
                }
            }
        }
    };
    // `call_counted` reports the reply line's length as read off the
    // wire, so metering costs nothing — no re-encoding of the response.
    let (response, wire_bytes) = conn.call_counted(request);
    ring.counters
        .bytes_in
        .fetch_add(wire_bytes, Ordering::Relaxed);
    match response {
        Response::Error { error, .. } if error.kind == ErrorKind::Transport => {
            // The pipe poisons itself after any transport fault; drop it
            // so the next attempt re-dials.
            note_failure(ring, peer);
            Exchange::Failed
        }
        Response::Error { .. } => {
            // The daemon answered — it is alive — but rejected the peer
            // kind (`malformed` on old builds, `--no-peer-serve` refusals,
            // version skew).  Flag it and stop advertising its keys.
            let mut inner = peer.inner.lock().unwrap();
            inner.unsupported = true;
            inner.failures = 0;
            inner.quarantined_until = None;
            inner.programs.clear();
            inner.summaries.clear();
            inner.conn = Some(conn);
            Exchange::Unsupported
        }
        response => {
            let mut inner = peer.inner.lock().unwrap();
            inner.conn = Some(conn);
            inner.failures = 0;
            inner.quarantined_until = None;
            inner.unsupported = false;
            Exchange::Reply(Box::new(response))
        }
    }
}

/// Book one transport failure against `peer`: drop its connection, bump
/// the consecutive-failure count, and trip the breaker at the threshold
/// (also re-arming it when a post-quarantine probe fails).
pub(crate) fn note_failure(ring: &PeerRing, peer: &Peer) {
    let mut inner = peer.inner.lock().unwrap();
    inner.conn = None;
    inner.failures = inner.failures.saturating_add(1);
    let now = Instant::now();
    if inner.failures >= ring.config.failure_threshold && !inner.in_quarantine(now) {
        inner.quarantined_until = Some(now + ring.config.quarantine);
        inner.generation = 0;
        inner.programs.clear();
        inner.summaries.clear();
        ring.counters.quarantines.fetch_add(1, Ordering::Relaxed);
    }
}

impl PeerRing {
    /// Fetch and verify one whole-program entry from the ring.
    pub fn fetch_program(&self, key: u64) -> Option<Arc<AnalyzedProgram>> {
        match self.fetch(PeerNamespace::Programs, key)? {
            Payload::Program(entry) => Some(entry),
            Payload::Summaries(_) => None,
        }
    }

    /// Fetch and verify one per-SCC summary table from the ring.
    pub fn fetch_summaries(&self, key: u64) -> Option<SummaryTable> {
        match self.fetch(PeerNamespace::Summaries, key)? {
            Payload::Summaries(table) => Some(table),
            Payload::Program(_) => None,
        }
    }

    /// The longest a well-behaved leader can take: each candidate costs
    /// at most a dial, a write, and a read, each bounded by the fetch
    /// timeout — plus slack for scheduling.  Followers give up (and fall
    /// through to recompute) past this point.
    fn follower_deadline(&self) -> Duration {
        self.config
            .fetch_timeout
            .saturating_mul(3)
            .saturating_mul(self.peers.len().max(1) as u32)
            .saturating_add(Duration::from_secs(1))
    }

    fn fetch(&self, namespace: PeerNamespace, key: u64) -> Option<Payload> {
        if self.peers.is_empty() {
            return None;
        }
        let (flight, leader) = {
            let mut flights = self.flights.lock().unwrap();
            match flights.entry((namespace, key)) {
                Entry::Occupied(entry) => (entry.get().clone(), false),
                Entry::Vacant(entry) => {
                    let flight = Arc::new(Flight::default());
                    entry.insert(flight.clone());
                    (flight, true)
                }
            }
        };
        if !leader {
            return flight.wait(self.follower_deadline());
        }
        let guard = FlightGuard {
            ring: self,
            key: (namespace, key),
            flight,
            done: false,
        };
        let result = {
            let _span = self.tracer.start("peer-fetch");
            let start = silobs::ticks();
            let result = self.fetch_from_peers(namespace, key);
            self.fetch_us.record(silobs::ticks().saturating_sub(start));
            result
        };
        match &result {
            Some(_) => self.counters.hits.fetch_add(1, Ordering::Relaxed),
            None => self.counters.misses.fetch_add(1, Ordering::Relaxed),
        };
        guard.complete(result.clone());
        result
    }

    fn fetch_from_peers(&self, namespace: PeerNamespace, key: u64) -> Option<Payload> {
        let now = Instant::now();
        // Gossip-informed candidate order: advertisers of the key first,
        // then every other live peer (gossip lags reality by up to one
        // interval, so "not advertised" is a hint, not a verdict).
        let mut advertisers = Vec::new();
        let mut fallback = Vec::new();
        for (index, peer) in self.peers.iter().enumerate() {
            let inner = peer.inner.lock().unwrap();
            if inner.unsupported || inner.in_quarantine(now) {
                continue;
            }
            if inner.advertises(namespace, key) {
                advertisers.push((index, true));
            } else {
                fallback.push((index, false));
            }
        }
        advertisers.extend(fallback);
        for (index, advertised) in advertisers {
            let peer = &self.peers[index];
            let reply = match exchange(self, peer, Request::peer_fetch(namespace, key)) {
                Exchange::Reply(reply) => reply,
                Exchange::Failed | Exchange::Unsupported => continue,
            };
            let Response::PeerEntry {
                generation,
                body,
                trace_spans,
                ..
            } = *reply
            else {
                continue;
            };
            // The serving peer piggybacked its spans for this trace (the
            // exchange forwarded our ambient context on the wire).  Adopt
            // them into our tracer so the origin daemon's trace dump shows
            // the whole cross-daemon tree — and so a further piggyback
            // toward *our* caller re-ships them on multi-hop chains.
            if !trace_spans.is_empty() {
                self.tracer
                    .adopt(trace_spans.iter().map(TraceSpan::to_record).collect());
            }
            {
                let mut inner = peer.inner.lock().unwrap();
                if inner.generation != generation {
                    // The inventory snapshot predates a clear (or a
                    // restart): every key it advertised belongs to a
                    // store that no longer exists.  Forget the lot; the
                    // next gossip round rebuilds it against the new
                    // generation.
                    inner.generation = generation;
                    inner.programs.clear();
                    inner.summaries.clear();
                } else if advertised && body.is_none() {
                    // Same snapshot, entry gone: evicted.  Drop just this
                    // advertisement so candidate ordering stops
                    // preferring the peer for a key it no longer holds.
                    match namespace {
                        PeerNamespace::Programs => inner.programs.remove(&key),
                        PeerNamespace::Summaries => inner.summaries.remove(&key),
                    };
                }
            }
            if let Some(body) = body {
                let bytes = body.encode().into_bytes();
                let payload = match namespace {
                    PeerNamespace::Programs => {
                        codec::decode_program(&bytes, key).map(Payload::Program)
                    }
                    PeerNamespace::Summaries => {
                        codec::decode_summaries(&bytes, key).map(Payload::Summaries)
                    }
                };
                // A body that fails fingerprint/digest verification is
                // dropped on the floor; some other peer may hold a good
                // copy.
                if let Some(payload) = payload {
                    return Some(payload);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PeerConfig;
    use silobs::Tracer;
    use std::time::Duration;

    fn empty_ring() -> PeerRing {
        PeerRing::new(PeerConfig::new(vec![]), Arc::new(Tracer::default()))
    }

    /// A leader that dies without publishing (panic, teardown) must not
    /// wedge the key: the guard's drop publishes a miss and clears the
    /// flights entry, so waiting followers wake and later fetches run.
    #[test]
    fn dropped_leader_guard_publishes_a_miss_and_clears_the_flight() {
        let ring = empty_ring();
        let key = (PeerNamespace::Programs, 42);
        let flight = Arc::new(Flight::default());
        ring.flights.lock().unwrap().insert(key, flight.clone());

        let follower = {
            let flight = flight.clone();
            std::thread::spawn(move || flight.wait(Duration::from_secs(30)))
        };
        drop(FlightGuard {
            ring: &ring,
            key,
            flight,
            done: false,
        });
        assert!(
            follower.join().unwrap().is_none(),
            "followers of a dead leader see a miss, not a hang"
        );
        assert!(
            ring.flights.lock().unwrap().is_empty(),
            "the stale flight entry is cleaned up"
        );
    }

    /// `complete` consumes the guard; its drop must not then double-toggle
    /// the published slot.
    #[test]
    fn completed_guard_keeps_its_published_result() {
        let ring = empty_ring();
        let key = (PeerNamespace::Summaries, 7);
        let flight = Arc::new(Flight::default());
        ring.flights.lock().unwrap().insert(key, flight.clone());
        let table: SummaryTable = Arc::new(std::collections::HashMap::new());
        FlightGuard {
            ring: &ring,
            key,
            flight: flight.clone(),
            done: false,
        }
        .complete(Some(Payload::Summaries(table)));
        assert!(matches!(
            flight.wait(Duration::from_millis(10)),
            Some(Payload::Summaries(_))
        ));
        assert!(ring.flights.lock().unwrap().is_empty());
    }

    /// A follower's wait is bounded even when nothing is ever published.
    #[test]
    fn follower_wait_times_out_instead_of_hanging() {
        let flight = Flight::default();
        let started = Instant::now();
        assert!(flight.wait(Duration::from_millis(50)).is_none());
        assert!(started.elapsed() >= Duration::from_millis(50));
        assert!(started.elapsed() < Duration::from_secs(5));
    }
}
