//! The peer fetch path: single-flight, deadline-bounded, breaker-guarded
//! retrieval of one cache entry from the ring.
//!
//! The store calls [`PeerRing::fetch_program`]/[`PeerRing::fetch_summaries`]
//! after both local tiers miss.  Candidate peers are ordered by gossip
//! knowledge — peers advertising the key first, every other live peer as
//! fallback — and each is asked over a connection whose connect, read, and
//! write timeouts are all the configured fetch deadline, so a hung peer
//! costs one bounded wait, never a stall.  A returned body is decoded and
//! verified with the durable tier's own codec before it counts as a hit;
//! a body that fails verification is discarded and the next peer is tried.
//!
//! Single-flight: concurrent misses on one `(namespace, key)` elect a
//! leader; followers block on the leader's `Flight` slot and share its
//! verified result, so a thundering herd on one hot cone issues exactly
//! one network fetch.

use super::{Peer, PeerRing};
use crate::service::proto::{ErrorKind, PeerNamespace, Request, Response};
use crate::service::{RemoteService, Service};
use crate::store::durable::codec;
use crate::store::SummaryTable;
use crate::AnalyzedProgram;
use std::collections::hash_map::Entry;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// A verified entry fetched from a peer.
#[derive(Debug, Clone)]
pub(crate) enum Payload {
    Program(Arc<AnalyzedProgram>),
    Summaries(SummaryTable),
}

/// The single-flight rendezvous for one in-progress fetch: the leader
/// publishes its result (hit or miss) and every follower clones it.
#[derive(Debug, Default)]
pub(crate) struct Flight {
    slot: Mutex<Option<Option<Payload>>>,
    ready: Condvar,
}

impl Flight {
    fn wait(&self) -> Option<Payload> {
        let mut slot = self.slot.lock().unwrap();
        while slot.is_none() {
            slot = self.ready.wait(slot).unwrap();
        }
        slot.clone().unwrap()
    }

    fn publish(&self, result: Option<Payload>) {
        *self.slot.lock().unwrap() = Some(result);
        self.ready.notify_all();
    }
}

/// What one request/response exchange with a peer amounted to.
pub(crate) enum Exchange {
    /// A well-formed reply from a live, peering-capable daemon.
    Reply(Box<Response>),
    /// Transport failure (or active quarantine); the breaker was updated.
    Failed,
    /// The daemon is alive but answered the peering kind with an error:
    /// it predates the extension or serves with `--no-peer-serve`.  Not a
    /// breaker event — the daemon is healthy, just not a cache peer.
    Unsupported,
}

/// One exchange with `peer`, reusing its cached connection when possible.
/// The connection is taken out of the peer's lock for the duration of the
/// network call, so stats snapshots never block behind a slow peer.
pub(crate) fn exchange(ring: &PeerRing, peer: &Peer, request: Request) -> Exchange {
    let conn = {
        let mut inner = peer.inner.lock().unwrap();
        if inner.in_quarantine(Instant::now()) {
            return Exchange::Failed;
        }
        match inner.conn.take() {
            Some(conn) => conn,
            None => {
                drop(inner);
                match RemoteService::dial_with_timeout(&peer.addr, Some(ring.config.fetch_timeout))
                {
                    Ok(conn) => conn,
                    Err(_) => {
                        note_failure(ring, peer);
                        return Exchange::Failed;
                    }
                }
            }
        }
    };
    match conn.call(request) {
        Response::Error { error, .. } if error.kind == ErrorKind::Transport => {
            // The pipe poisons itself after any transport fault; drop it
            // so the next attempt re-dials.
            note_failure(ring, peer);
            Exchange::Failed
        }
        Response::Error { .. } => {
            // The daemon answered — it is alive — but rejected the peer
            // kind (`malformed` on old builds, `--no-peer-serve` refusals,
            // version skew).  Flag it and stop advertising its keys.
            let mut inner = peer.inner.lock().unwrap();
            inner.unsupported = true;
            inner.failures = 0;
            inner.quarantined_until = None;
            inner.programs.clear();
            inner.summaries.clear();
            inner.conn = Some(conn);
            Exchange::Unsupported
        }
        response => {
            ring.counters
                .bytes_in
                .fetch_add(response.encode().len() as u64, Ordering::Relaxed);
            let mut inner = peer.inner.lock().unwrap();
            inner.conn = Some(conn);
            inner.failures = 0;
            inner.quarantined_until = None;
            inner.unsupported = false;
            Exchange::Reply(Box::new(response))
        }
    }
}

/// Book one transport failure against `peer`: drop its connection, bump
/// the consecutive-failure count, and trip the breaker at the threshold
/// (also re-arming it when a post-quarantine probe fails).
pub(crate) fn note_failure(ring: &PeerRing, peer: &Peer) {
    let mut inner = peer.inner.lock().unwrap();
    inner.conn = None;
    inner.failures = inner.failures.saturating_add(1);
    let now = Instant::now();
    if inner.failures >= ring.config.failure_threshold && !inner.in_quarantine(now) {
        inner.quarantined_until = Some(now + ring.config.quarantine);
        inner.generation = 0;
        inner.programs.clear();
        inner.summaries.clear();
        ring.counters.quarantines.fetch_add(1, Ordering::Relaxed);
    }
}

impl PeerRing {
    /// Fetch and verify one whole-program entry from the ring.
    pub fn fetch_program(&self, key: u64) -> Option<Arc<AnalyzedProgram>> {
        match self.fetch(PeerNamespace::Programs, key)? {
            Payload::Program(entry) => Some(entry),
            Payload::Summaries(_) => None,
        }
    }

    /// Fetch and verify one per-SCC summary table from the ring.
    pub fn fetch_summaries(&self, key: u64) -> Option<SummaryTable> {
        match self.fetch(PeerNamespace::Summaries, key)? {
            Payload::Summaries(table) => Some(table),
            Payload::Program(_) => None,
        }
    }

    fn fetch(&self, namespace: PeerNamespace, key: u64) -> Option<Payload> {
        if self.peers.is_empty() {
            return None;
        }
        let (flight, leader) = {
            let mut flights = self.flights.lock().unwrap();
            match flights.entry((namespace, key)) {
                Entry::Occupied(entry) => (entry.get().clone(), false),
                Entry::Vacant(entry) => {
                    let flight = Arc::new(Flight::default());
                    entry.insert(flight.clone());
                    (flight, true)
                }
            }
        };
        if !leader {
            return flight.wait();
        }
        let result = {
            let _span = self.tracer.start("peer-fetch");
            let start = silobs::ticks();
            let result = self.fetch_from_peers(namespace, key);
            self.fetch_us.record(silobs::ticks().saturating_sub(start));
            result
        };
        match &result {
            Some(_) => self.counters.hits.fetch_add(1, Ordering::Relaxed),
            None => self.counters.misses.fetch_add(1, Ordering::Relaxed),
        };
        flight.publish(result.clone());
        self.flights.lock().unwrap().remove(&(namespace, key));
        result
    }

    fn fetch_from_peers(&self, namespace: PeerNamespace, key: u64) -> Option<Payload> {
        let now = Instant::now();
        // Gossip-informed candidate order: advertisers of the key first,
        // then every other live peer (gossip lags reality by up to one
        // interval, so "not advertised" is a hint, not a verdict).
        let mut advertisers = Vec::new();
        let mut fallback = Vec::new();
        for (index, peer) in self.peers.iter().enumerate() {
            let inner = peer.inner.lock().unwrap();
            if inner.unsupported || inner.in_quarantine(now) {
                continue;
            }
            if inner.advertises(namespace, key) {
                advertisers.push(index);
            } else {
                fallback.push(index);
            }
        }
        advertisers.extend(fallback);
        for index in advertisers {
            let peer = &self.peers[index];
            let reply = match exchange(self, peer, Request::peer_fetch(namespace, key)) {
                Exchange::Reply(reply) => reply,
                Exchange::Failed | Exchange::Unsupported => continue,
            };
            if let Response::PeerEntry {
                body: Some(body), ..
            } = *reply
            {
                let bytes = body.encode().into_bytes();
                let payload = match namespace {
                    PeerNamespace::Programs => {
                        codec::decode_program(&bytes, key).map(Payload::Program)
                    }
                    PeerNamespace::Summaries => {
                        codec::decode_summaries(&bytes).map(Payload::Summaries)
                    }
                };
                // A body that fails fingerprint/digest verification is
                // dropped on the floor; some other peer may hold a good
                // copy.
                if let Some(payload) = payload {
                    return Some(payload);
                }
            }
        }
        None
    }
}
