//! The anti-entropy gossip loop: periodically exchange digest inventories
//! with every peer, which doubles as the breaker's health probe.
//!
//! Each round sends `peer_inventory` to every peer that is not sitting in
//! quarantine and replaces that peer's advertised key sets wholesale (the
//! inventory is a full snapshot, not a delta — a few thousand 8-byte
//! fingerprints per round is cheap, and full replacement means a missed
//! round can never leave a tombstone behind).  The snapshot is tagged
//! with the peer store's generation; between rounds, fetch replies carry
//! the current generation and [`super::fetch`] discards the whole
//! snapshot on mismatch — a cleared (or restarted) store stops being
//! preferred the moment it answers, not a gossip interval later.  A peer
//! whose quarantine has expired is contacted like any other: a
//! successful exchange closes the breaker, a failed one re-arms it.

use super::fetch::{self, Exchange};
use super::{Peer, PeerRing};
use crate::service::proto::{Request, Response};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Spawn the background loop for `ring`.  The thread holds only a `Weak`
/// reference, so dropping the last `Arc<PeerRing>` (which signals the stop
/// flag) also ends the loop.
pub(crate) fn spawn_loop(ring: &Arc<PeerRing>) -> JoinHandle<()> {
    let weak = Arc::downgrade(ring);
    let stop = ring.stop.clone();
    let interval = ring.config.gossip_interval;
    std::thread::Builder::new()
        .name("sil-peer-gossip".to_string())
        .spawn(move || loop {
            {
                let guard = stop.flag.lock().unwrap();
                if *guard {
                    return;
                }
                let (guard, _) = stop.wake.wait_timeout(guard, interval).unwrap();
                if *guard {
                    return;
                }
            }
            match weak.upgrade() {
                Some(ring) => ring.gossip_once(),
                None => return,
            }
        })
        .expect("spawn the peer gossip thread")
}

impl PeerRing {
    /// One anti-entropy round, synchronously: exchange inventories with
    /// every peer that is not currently quarantined (a peer whose
    /// quarantine has expired gets probed here).  The background loop
    /// calls this on its interval; tests call it directly.
    pub fn gossip_once(&self) {
        let _span = self.tracer.start("peer-gossip");
        for peer in &self.peers {
            self.gossip_peer(peer);
        }
        self.counters.gossip_rounds.fetch_add(1, Ordering::Relaxed);
    }

    fn gossip_peer(&self, peer: &Peer) {
        let reply = match fetch::exchange(self, peer, Request::peer_inventory()) {
            Exchange::Reply(reply) => reply,
            // `Unsupported` and `Failed` already did their bookkeeping in
            // `exchange` (feature flagging and breaker counting).
            Exchange::Unsupported | Exchange::Failed => return,
        };
        match *reply {
            Response::PeerInventory {
                generation,
                programs,
                summaries,
                ..
            } => {
                let mut inner = peer.inner.lock().unwrap();
                inner.generation = generation;
                inner.programs = programs.into_iter().collect();
                inner.summaries = summaries.into_iter().collect();
            }
            // A well-formed reply of the wrong shape means the peer is
            // confused; count it against the breaker like a transport
            // fault rather than trusting anything it advertises.
            _ => fetch::note_failure(self, peer),
        }
    }
}
