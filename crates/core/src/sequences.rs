//! Interference between statement sequences (Section 5.3, Figures 9 and 10).
//!
//! To decide whether two statement *sequences* `U` and `V` starting at the
//! same program point may execute in parallel, locations are described
//! *relative* to the handles `L` that are used before being defined in either
//! sequence: a relative location is `(name, kind, access-paths)` where
//! `name ∈ L` and the access paths describe how the touched node is reached
//! from `name`.  Two relative locations may denote the same memory cell only
//! if they agree on the base handle and field kind and their access paths may
//! intersect.
//!
//! The result is sound only when the data structure is a TREE at the fork
//! point (the paper proves this by induction on the height of the tree);
//! [`sequences_independent`] therefore also checks the structural
//! classification.  Sequences containing procedure calls or loops are
//! conservatively reported as interfering — call-level parallelism is
//! handled by the coarse-grain method of §5.2 instead.

use crate::interference::LocationKind;
use crate::state::AbstractState;
use crate::transfer::transfer_stmt;
use sil_lang::ast::*;
use sil_lang::basic::BasicStmt;
use sil_lang::live::used_before_defined;
use sil_lang::types::ProcSignature;
use sil_pathmatrix::{Path, PathMatrix, PathSet};
use std::collections::BTreeSet;
use std::fmt;

/// A relative location: a field of the node reached from `base` along one of
/// the `access` paths (`S` = the node `base` itself), or a variable when
/// `kind == Var` (then `access` is ignored).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelativeLocation {
    pub base: String,
    pub kind: LocationKind,
    pub access: PathSet,
}

impl RelativeLocation {
    pub fn var(name: impl Into<String>) -> RelativeLocation {
        RelativeLocation {
            base: name.into(),
            kind: LocationKind::Var,
            access: PathSet::singleton(Path::same(sil_pathmatrix::Certainty::Definite)),
        }
    }

    pub fn node(base: impl Into<String>, kind: LocationKind, access: PathSet) -> RelativeLocation {
        RelativeLocation {
            base: base.into(),
            kind,
            access,
        }
    }

    /// Whether this location and `other` may denote the same memory cell.
    pub fn may_overlap(&self, other: &RelativeLocation) -> bool {
        if self.kind != other.kind {
            return false;
        }
        if self.kind == LocationKind::Var {
            return self.base == other.base;
        }
        if self.base != other.base {
            // Both are described from handles in L; distinct L handles may
            // still reach the same node only if they are related, which the
            // caller accounts for by expanding aliases before comparing.
            return false;
        }
        paths_may_intersect(&self.access, &other.access)
    }
}

impl fmt::Display for RelativeLocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.kind == LocationKind::Var {
            write!(f, "({},var)", self.base)
        } else {
            write!(f, "({},{},{})", self.base, self.kind, self.access)
        }
    }
}

/// Whether two access-path sets may describe a common node.
pub fn paths_may_intersect(a: &PathSet, b: &PathSet) -> bool {
    a.iter().any(|p| b.iter().any(|q| path_may_equal(p, q)))
}

/// Whether two paths (from the same base handle) may lead to the same node.
fn path_may_equal(p: &Path, q: &Path) -> bool {
    match (p.is_same(), q.is_same()) {
        (true, true) => true,
        (true, false) | (false, true) => false,
        (false, false) => {
            // Provably different first edges means provably different subtrees
            // (in a TREE).
            if let (Some(lp), Some(lq)) = (p.first_link(), q.first_link()) {
                use sil_pathmatrix::Dir;
                if lp.dir != Dir::Down && lq.dir != Dir::Down && lp.dir != lq.dir {
                    return false;
                }
            }
            // Otherwise require the length intervals to intersect.
            let (pmin, pmax) = (p.min_len(), p.max_len());
            let (qmin, qmax) = (q.min_len(), q.max_len());
            let upper_ok_p = pmax.is_none_or(|m| m >= qmin);
            let upper_ok_q = qmax.is_none_or(|m| m >= pmin);
            upper_ok_p && upper_ok_q
        }
    }
}

/// The relative alias function `A^r(h, kind, L, p)`: the locations, described
/// from the handles in `L`, that may be aliased to the `kind` field of the
/// node named by `h`.
pub fn relative_alias(
    h: &str,
    kind: LocationKind,
    live: &BTreeSet<String>,
    matrix: &PathMatrix,
) -> Vec<RelativeLocation> {
    let mut out = Vec::new();
    for l in live {
        let entry = if l == h {
            PathSet::singleton(Path::same(sil_pathmatrix::Certainty::Definite))
        } else {
            matrix.get(l, h)
        };
        if !entry.is_empty() {
            out.push(RelativeLocation::node(l.clone(), kind, entry));
        }
    }
    if out.is_empty() {
        // The node is not describable from L (e.g. freshly allocated inside
        // the sequence): fall back to an unknown access from every live
        // handle, which is conservative.
        for l in live {
            out.push(RelativeLocation::node(
                l.clone(),
                kind,
                crate::transfer::unknown_relation(),
            ));
        }
    }
    out
}

/// The relative read set `R^r(s, p, L)` (Figure 10, extended to value and
/// scalar statements).
pub fn relative_read_set(
    stmt: &Stmt,
    sig: &ProcSignature,
    matrix: &PathMatrix,
    live: &BTreeSet<String>,
) -> Vec<RelativeLocation> {
    let mut out = Vec::new();
    let Some(basic) = BasicStmt::classify(stmt, sig) else {
        if let Stmt::If { cond, .. } | Stmt::While { cond, .. } = stmt {
            for v in cond.variables() {
                out.push(RelativeLocation::var(v));
            }
        }
        return out;
    };
    match basic {
        BasicStmt::AssignNil { .. } | BasicStmt::AssignNew { .. } => {}
        BasicStmt::AssignCopy { src, .. } => out.push(RelativeLocation::var(src)),
        BasicStmt::AssignLoad { src, field, .. } => {
            out.push(RelativeLocation::var(src));
            out.extend(relative_alias(
                src,
                LocationKind::of_field(field),
                live,
                matrix,
            ));
        }
        BasicStmt::StoreField { dst, src, .. } => {
            out.push(RelativeLocation::var(dst));
            out.push(RelativeLocation::var(src));
        }
        BasicStmt::StoreFieldNil { dst, .. } => out.push(RelativeLocation::var(dst)),
        BasicStmt::ValueLoad { src, .. } => {
            out.push(RelativeLocation::var(src));
            out.extend(relative_alias(src, LocationKind::Value, live, matrix));
        }
        BasicStmt::ValueStore { dst, value } => {
            out.push(RelativeLocation::var(dst));
            collect_expr_relative_reads(value, sig, matrix, live, &mut out);
        }
        BasicStmt::ScalarAssign { value, .. } => {
            collect_expr_relative_reads(value, sig, matrix, live, &mut out);
        }
        BasicStmt::FuncAssign { args, .. } | BasicStmt::ProcCall { args, .. } => {
            for a in args {
                collect_expr_relative_reads(a, sig, matrix, live, &mut out);
            }
        }
    }
    out
}

#[allow(clippy::only_used_in_recursion)] // `sig` is part of the traversal context
fn collect_expr_relative_reads(
    e: &Expr,
    sig: &ProcSignature,
    matrix: &PathMatrix,
    live: &BTreeSet<String>,
    out: &mut Vec<RelativeLocation>,
) {
    match e {
        Expr::Int(_) | Expr::Nil => {}
        Expr::Path(p) => {
            out.push(RelativeLocation::var(p.base.clone()));
            if let Some(field) = p.fields.first() {
                out.extend(relative_alias(
                    &p.base,
                    LocationKind::of_field(*field),
                    live,
                    matrix,
                ));
            }
        }
        Expr::Value(p) => {
            out.push(RelativeLocation::var(p.base.clone()));
            out.extend(relative_alias(&p.base, LocationKind::Value, live, matrix));
        }
        Expr::Unary(_, inner) => collect_expr_relative_reads(inner, sig, matrix, live, out),
        Expr::Binary(_, l, r) => {
            collect_expr_relative_reads(l, sig, matrix, live, out);
            collect_expr_relative_reads(r, sig, matrix, live, out);
        }
    }
}

/// The relative write set `W^r(s, p, L)` (Figure 10).
pub fn relative_write_set(
    stmt: &Stmt,
    sig: &ProcSignature,
    matrix: &PathMatrix,
    live: &BTreeSet<String>,
) -> Vec<RelativeLocation> {
    let mut out = Vec::new();
    let Some(basic) = BasicStmt::classify(stmt, sig) else {
        return out;
    };
    match basic {
        BasicStmt::AssignNil { dst }
        | BasicStmt::AssignNew { dst }
        | BasicStmt::AssignCopy { dst, .. }
        | BasicStmt::AssignLoad { dst, .. }
        | BasicStmt::ValueLoad { dst, .. }
        | BasicStmt::ScalarAssign { dst, .. }
        | BasicStmt::FuncAssign { dst, .. } => out.push(RelativeLocation::var(dst)),
        BasicStmt::StoreField { dst, field, .. } | BasicStmt::StoreFieldNil { dst, field } => {
            out.extend(relative_alias(
                dst,
                LocationKind::of_field(field),
                live,
                matrix,
            ));
        }
        BasicStmt::ValueStore { dst, .. } => {
            out.extend(relative_alias(dst, LocationKind::Value, live, matrix));
        }
        BasicStmt::ProcCall { .. } => {}
    }
    out
}

/// A conflict found between the two sequences.
#[derive(Debug, Clone)]
pub struct SequenceConflict {
    pub from_u: RelativeLocation,
    pub from_v: RelativeLocation,
}

impl fmt::Display for SequenceConflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ↯ {}", self.from_u, self.from_v)
    }
}

/// Whether a sequence consists purely of basic (non-call) simple statements.
fn is_basic_sequence(stmts: &[Stmt], sig: &ProcSignature) -> bool {
    stmts.iter().all(|s| {
        matches!(
            BasicStmt::classify(s, sig),
            Some(b) if !matches!(b, BasicStmt::ProcCall { .. } | BasicStmt::FuncAssign { .. })
        )
    })
}

/// Compute the matrices `p1..pn` before each statement of a basic-statement
/// sequence executed from `entry`.
fn matrices_through(entry: &AbstractState, stmts: &[Stmt], sig: &ProcSignature) -> Vec<PathMatrix> {
    let mut out = Vec::with_capacity(stmts.len());
    let mut current = entry.clone();
    let mut warnings = Vec::new();
    for s in stmts {
        out.push(current.matrix.clone());
        current = transfer_stmt(&current, s, sig, &mut warnings);
    }
    out
}

/// The relative interference set `I^r(U, P, V, Q, L)` of §5.3.
pub fn relative_interference(
    u: &[Stmt],
    v: &[Stmt],
    entry: &AbstractState,
    sig: &ProcSignature,
) -> Vec<SequenceConflict> {
    let block_u = Stmt::block(u.to_vec());
    let block_v = Stmt::block(v.to_vec());
    let mut live: BTreeSet<String> = used_before_defined(&block_u);
    live.extend(used_before_defined(&block_v));
    // restrict to handles
    live.retain(|n| sig.is_handle(n));

    let pu = matrices_through(entry, u, sig);
    let pv = matrices_through(entry, v, sig);

    let mut reads_u = Vec::new();
    let mut writes_u = Vec::new();
    for (s, m) in u.iter().zip(pu.iter()) {
        reads_u.extend(relative_read_set(s, sig, m, &live));
        writes_u.extend(relative_write_set(s, sig, m, &live));
    }
    let mut reads_v = Vec::new();
    let mut writes_v = Vec::new();
    for (s, m) in v.iter().zip(pv.iter()) {
        reads_v.extend(relative_read_set(s, sig, m, &live));
        writes_v.extend(relative_write_set(s, sig, m, &live));
    }

    let mut conflicts = Vec::new();
    for w in &writes_u {
        for other in reads_v.iter().chain(writes_v.iter()) {
            if w.may_overlap(other) {
                conflicts.push(SequenceConflict {
                    from_u: w.clone(),
                    from_v: other.clone(),
                });
            }
        }
    }
    for w in &writes_v {
        for other in reads_u.iter().chain(writes_u.iter()) {
            if w.may_overlap(other) {
                conflicts.push(SequenceConflict {
                    from_u: other.clone(),
                    from_v: w.clone(),
                });
            }
        }
    }
    conflicts
}

/// Whether the statement sequences `U` and `V`, started from the same
/// program point with abstract state `entry`, may safely execute in parallel
/// (`U || V`).
///
/// Requirements for a positive answer (all checked):
/// * the data structure is a TREE at the fork point (§5.3's soundness
///   condition),
/// * both sequences consist of basic non-call statements (call-level
///   parallelism is §5.2's job),
/// * the relative interference set is empty.
pub fn sequences_independent(
    u: &[Stmt],
    v: &[Stmt],
    entry: &AbstractState,
    sig: &ProcSignature,
) -> bool {
    if !entry.structure.is_tree() {
        return false;
    }
    if !is_basic_sequence(u, sig) || !is_basic_sequence(v, sig) {
        return false;
    }
    relative_interference(u, v, entry, sig).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::StructureKind;
    use sil_lang::parser::parse_stmt;
    use sil_lang::types::Type;
    use sil_pathmatrix::{exact, Dir};
    use std::collections::HashMap;

    fn sig(handles: &[&str], ints: &[&str]) -> ProcSignature {
        let mut vars = HashMap::new();
        for h in handles {
            vars.insert(h.to_string(), Type::Handle);
        }
        for i in ints {
            vars.insert(i.to_string(), Type::Int);
        }
        ProcSignature {
            name: "test".into(),
            params: vec![],
            return_type: None,
            vars,
        }
    }

    fn stmts(srcs: &[&str]) -> Vec<Stmt> {
        srcs.iter().map(|s| parse_stmt(s).unwrap()).collect()
    }

    /// The canonical §5.3 example: working on the two disjoint subtrees of a
    /// tree `t` in parallel.
    #[test]
    fn disjoint_subtree_sequences_are_independent() {
        let s = sig(&["t", "a", "b"], &["x", "y"]);
        let entry = AbstractState::with_handles(["t"]);
        let u = stmts(&["a := t.left", "x := a.value", "a.value := x + 1"]);
        let v = stmts(&["b := t.right", "y := b.value", "b.value := y + 1"]);
        assert!(sequences_independent(&u, &v, &entry, &s));
        assert!(relative_interference(&u, &v, &entry, &s).is_empty());
    }

    #[test]
    fn same_subtree_sequences_interfere() {
        let s = sig(&["t", "a", "b"], &["x", "y"]);
        let entry = AbstractState::with_handles(["t"]);
        let u = stmts(&["a := t.left", "a.value := 1"]);
        let v = stmts(&["b := t.left", "y := b.value"]);
        assert!(!sequences_independent(&u, &v, &entry, &s));
        let conflicts = relative_interference(&u, &v, &entry, &s);
        assert!(!conflicts.is_empty());
        // the conflict is on the value field reached through t.left from both sides
        assert!(conflicts
            .iter()
            .any(|c| c.from_u.kind == LocationKind::Value && c.from_u.base == "t"));
    }

    #[test]
    fn variable_conflicts_are_detected() {
        let s = sig(&["t", "a"], &["x"]);
        let entry = AbstractState::with_handles(["t"]);
        let u = stmts(&["x := 1"]);
        let v = stmts(&["x := 2"]);
        assert!(!sequences_independent(&u, &v, &entry, &s));
        // writing different variables is fine
        let v2 = stmts(&["a := t.left"]);
        assert!(sequences_independent(&u, &v2, &entry, &s));
    }

    #[test]
    fn structural_update_in_one_subtree_is_independent_of_the_other() {
        let s = sig(&["t", "a", "b", "c"], &[]);
        let entry = AbstractState::with_handles(["t"]);
        // U reverses the children below t.left; V only reads t.right's value field.
        let u = stmts(&[
            "a := t.left",
            "c := a.left",
            "a.left := nil",
            "a.right := c",
        ]);
        let v = stmts(&["b := t.right", "b.value := 3"]);
        assert!(sequences_independent(&u, &v, &entry, &s));
    }

    #[test]
    fn structural_update_conflicts_with_read_of_same_field() {
        let s = sig(&["t", "a", "b"], &[]);
        let entry = AbstractState::with_handles(["t"]);
        let u = stmts(&["a := t.left", "a.left := nil"]);
        let v = stmts(&["b := t.left", "b := b.left"]);
        assert!(!sequences_independent(&u, &v, &entry, &s));
    }

    #[test]
    fn non_tree_fork_point_refuses() {
        let s = sig(&["t", "a", "b"], &[]);
        let mut entry = AbstractState::with_handles(["t"]);
        entry.degrade_structure(StructureKind::PossiblyDag);
        let u = stmts(&["a := t.left", "a.value := 1"]);
        let v = stmts(&["b := t.right", "b.value := 2"]);
        assert!(!sequences_independent(&u, &v, &entry, &s));
    }

    #[test]
    fn sequences_with_calls_are_conservative() {
        let s = sig(&["t", "a", "b"], &[]);
        let entry = AbstractState::with_handles(["t"]);
        let u = stmts(&["visit(t)"]);
        let v = stmts(&["b := t.right"]);
        assert!(!sequences_independent(&u, &v, &entry, &s));
    }

    #[test]
    fn relative_alias_describes_node_from_live_handles() {
        let s = sig(&["t", "a"], &[]);
        let _ = &s;
        let mut m = PathMatrix::with_handles(["t", "a"]);
        m.set("t", "a", PathSet::singleton(exact(Dir::Left, 1)));
        let live: BTreeSet<String> = BTreeSet::from(["t".to_string()]);
        let locs = relative_alias("a", LocationKind::Value, &live, &m);
        assert_eq!(locs.len(), 1);
        assert_eq!(locs[0].base, "t");
        assert_eq!(locs[0].access.to_string(), "L1");
    }

    #[test]
    fn path_overlap_rules() {
        use sil_pathmatrix::{at_least, same};
        // same vs same: overlap
        assert!(path_may_equal(&same(), &same()));
        // same vs strict descendant: no overlap
        assert!(!path_may_equal(&same(), &exact(Dir::Left, 1)));
        // L1 vs R1: provably different subtrees
        assert!(!path_may_equal(&exact(Dir::Left, 1), &exact(Dir::Right, 1)));
        // L1 vs L1: may be the same node
        assert!(path_may_equal(&exact(Dir::Left, 1), &exact(Dir::Left, 1)));
        // L1 vs L2: different depths, cannot be the same node
        assert!(!path_may_equal(&exact(Dir::Left, 1), &exact(Dir::Left, 2)));
        // L1 vs D+: lengths intersect and directions are compatible
        assert!(path_may_equal(
            &exact(Dir::Left, 1),
            &at_least(Dir::Down, 1)
        ));
        // R2 vs L+: first edges provably diverge
        assert!(!path_may_equal(
            &exact(Dir::Right, 2),
            &at_least(Dir::Left, 1)
        ));
    }

    #[test]
    fn figure_9_transform_u_v_to_parallel() {
        // Figure 9: it is safe to run U || V when the relative interference
        // set is empty.  Build the two halves of add_n's parallel statement
        // as sequences.
        let s = sig(&["h", "l", "r"], &["n"]);
        let entry = AbstractState::with_handles(["h"]);
        let u = stmts(&["l := h.left", "l.value := n"]);
        let v = stmts(&["r := h.right", "r.value := n"]);
        assert!(sequences_independent(&u, &v, &entry, &s));
    }
}
