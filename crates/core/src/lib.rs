//! # sil-analysis
//!
//! The path-matrix interference analysis of Hendren & Nicolau,
//! *Parallelizing Programs with Recursive Data Structures* (1989) — the
//! paper's core contribution.
//!
//! The crate is organised around the paper's sections:
//!
//! * [`state`] — the abstract state at a program point: a
//!   [`sil_pathmatrix::PathMatrix`] over the live handles plus the structural
//!   classification (TREE / DAG / possibly cyclic) and the bookkeeping needed
//!   to detect when updates break it,
//! * [`transfer`] — the analysis functions for every basic handle statement
//!   (§4, Figure 2), conditionals and `while` loops with the iterative
//!   approximation (§4, Figure 3),
//! * [`summary`] — procedure summaries: read-only vs. update handle
//!   arguments (value vs. structural updates), and function-result
//!   relationships,
//! * [`interproc`] — the interprocedural analysis with the symbolic handles
//!   `h*` / `h**` of Figure 7, and the whole-program driver,
//! * [`callgraph`] — the static call graph, its SCC condensation, the
//!   level schedule the engine parallelizes over, and the content-addressed
//!   cone fingerprints that key the engine's summary cache,
//! * [`interference`] — locations, the alias function, read/write sets
//!   (Figure 5), interference sets between basic statements (§5.1) and
//!   between procedure calls (§5.2),
//! * [`sequences`] — relative locations and interference between statement
//!   sequences (§5.3, Figures 9 and 10).
//!
//! ## Quick example
//!
//! ```
//! use sil_lang::frontend;
//! use sil_analysis::analyze_program;
//!
//! let (program, types) = frontend(sil_lang::testsrc::ADD_AND_REVERSE).unwrap();
//! let analysis = analyze_program(&program, &types);
//!
//! // At program point A of Figure 7, lside and rside are unrelated, so the
//! // two add_n calls may run in parallel.
//! let main = analysis.procedure("main").unwrap();
//! let point_a = main.state_before_call("add_n", 0).unwrap();
//! assert!(point_a.matrix.unrelated("lside", "rside"));
//! ```

pub mod callgraph;
pub mod interference;
pub mod interproc;
pub mod sequences;
pub mod state;
pub mod summary;
pub mod transfer;

pub use callgraph::CallGraph;
pub use interference::{
    call_call_interference, call_stmt_interference, interference_set, locations_of_call, read_set,
    statements_independent, write_set, Location, LocationKind,
};
pub use interproc::{
    analyze_program, analyze_program_incremental, analyze_program_recording,
    analyze_program_with_options, analyze_program_with_summaries, AnalysisResult, AnalysisSnapshot,
    AnalyzeOptions, IncrementalStats, ProcedureAnalysis, ProgramPoint, WalkRecord,
};
pub use sequences::{
    relative_interference, relative_read_set, relative_write_set, sequences_independent,
    RelativeLocation,
};
pub use state::{AbstractState, StructureKind, StructureWarning};
pub use summary::{compute_scc_summaries, compute_summaries, ArgMode, ProcSummary, ReturnSummary};
pub use transfer::{transfer_stmt, Analyzer};
