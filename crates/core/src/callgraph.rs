//! The static call graph of a SIL program, its strongly connected
//! components, and the scheduling structure derived from them.
//!
//! The interprocedural analysis and the summary computation are both
//! bottom-up over the call graph: a procedure's summary depends only on the
//! summaries of its (transitive) callees.  Condensing the graph into SCCs
//! yields a DAG; grouping the SCCs into *levels* (an SCC's level is one more
//! than the maximum level of the SCCs it calls into) exposes the parallelism
//! the analysis engine exploits — all SCCs of one level are mutually
//! independent and can be processed concurrently.
//!
//! The module also computes per-procedure *cone fingerprints*: a stable hash
//! covering a procedure's own content **and** the content of every procedure
//! it can transitively reach.  A summary is a pure function of exactly that
//! cone, which makes the cone fingerprint the correct content-addressed key
//! for a summary cache.

use sil_lang::ast::{Program, Rhs, Stmt};
use sil_lang::hash::{procedure_fingerprint, StableHasher};
use sil_lang::visit::collect_simple_stmts;
use std::collections::{BTreeSet, HashMap};

/// The call graph over a program's procedures.
#[derive(Debug, Clone)]
pub struct CallGraph {
    names: Vec<String>,
    index: HashMap<String, usize>,
    /// `callees[i]` — indices of the procedures `names[i]` may call.
    callees: Vec<BTreeSet<usize>>,
}

impl CallGraph {
    /// Extract the call graph of a program.  Calls to undeclared procedures
    /// are ignored (the type checker rejects them anyway).
    pub fn of_program(program: &Program) -> CallGraph {
        let names: Vec<String> = program.procedures.iter().map(|p| p.name.clone()).collect();
        let index: HashMap<String, usize> = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i))
            .collect();
        let mut callees = vec![BTreeSet::new(); names.len()];
        for (i, proc) in program.procedures.iter().enumerate() {
            for stmt in collect_simple_stmts(&proc.body) {
                let callee = match stmt {
                    Stmt::Call { proc, .. } => Some(proc.as_str()),
                    Stmt::Assign {
                        rhs: Rhs::Call(f, _),
                        ..
                    } => Some(f.as_str()),
                    _ => None,
                };
                if let Some(j) = callee.and_then(|c| index.get(c)) {
                    callees[i].insert(*j);
                }
            }
        }
        CallGraph {
            names,
            index,
            callees,
        }
    }

    /// All procedure names, in declaration order.
    pub fn procedures(&self) -> &[String] {
        &self.names
    }

    /// The procedures `name` may call (empty for unknown names).
    pub fn callees_of(&self, name: &str) -> Vec<&str> {
        match self.index.get(name) {
            Some(&i) => self.callees[i]
                .iter()
                .map(|&j| self.names[j].as_str())
                .collect(),
            None => Vec::new(),
        }
    }

    /// Strongly connected components in **reverse topological order**:
    /// every SCC appears after all SCCs it calls into, so a single forward
    /// pass over the result is a valid bottom-up schedule.
    pub fn sccs(&self) -> Vec<Vec<String>> {
        self.scc_indices()
            .into_iter()
            .map(|component| {
                component
                    .into_iter()
                    .map(|i| self.names[i].clone())
                    .collect()
            })
            .collect()
    }

    /// Tarjan's algorithm; components are emitted callees-first.
    fn scc_indices(&self) -> Vec<Vec<usize>> {
        struct Tarjan<'g> {
            graph: &'g CallGraph,
            indices: Vec<Option<usize>>,
            lowlinks: Vec<usize>,
            on_stack: Vec<bool>,
            stack: Vec<usize>,
            next_index: usize,
            components: Vec<Vec<usize>>,
        }

        impl Tarjan<'_> {
            fn visit(&mut self, v: usize) {
                self.indices[v] = Some(self.next_index);
                self.lowlinks[v] = self.next_index;
                self.next_index += 1;
                self.stack.push(v);
                self.on_stack[v] = true;

                for &w in &self.graph.callees[v] {
                    if self.indices[w].is_none() {
                        self.visit(w);
                        self.lowlinks[v] = self.lowlinks[v].min(self.lowlinks[w]);
                    } else if self.on_stack[w] {
                        self.lowlinks[v] = self.lowlinks[v].min(self.indices[w].unwrap());
                    }
                }

                if self.lowlinks[v] == self.indices[v].unwrap() {
                    let mut component = Vec::new();
                    loop {
                        let w = self.stack.pop().unwrap();
                        self.on_stack[w] = false;
                        component.push(w);
                        if w == v {
                            break;
                        }
                    }
                    component.sort_unstable();
                    self.components.push(component);
                }
            }
        }

        let n = self.names.len();
        let mut tarjan = Tarjan {
            graph: self,
            indices: vec![None; n],
            lowlinks: vec![0; n],
            on_stack: vec![false; n],
            stack: Vec::new(),
            next_index: 0,
            components: Vec::new(),
        };
        for v in 0..n {
            if tarjan.indices[v].is_none() {
                tarjan.visit(v);
            }
        }
        tarjan.components
    }

    /// The SCCs grouped into dependency levels: level 0 holds the SCCs with
    /// no outgoing calls, and every SCC of level `k` only calls into levels
    /// `< k`.  All SCCs within one level are mutually independent, so a
    /// scheduler may process the levels in order and the SCCs of each level
    /// concurrently.
    pub fn scc_levels(&self) -> Vec<Vec<Vec<String>>> {
        let components = self.scc_indices();
        // Map each node to its component (components are in reverse
        // topological order, so callees' components are already numbered
        // when a caller's component is processed).
        let mut component_of = vec![0usize; self.names.len()];
        for (c, members) in components.iter().enumerate() {
            for &v in members {
                component_of[v] = c;
            }
        }
        let mut level_of = vec![0usize; components.len()];
        for (c, members) in components.iter().enumerate() {
            let mut level = 0usize;
            for &v in members {
                for &w in &self.callees[v] {
                    let target = component_of[w];
                    if target != c {
                        level = level.max(level_of[target] + 1);
                    }
                }
            }
            level_of[c] = level;
        }
        let max_level = level_of.iter().copied().max().unwrap_or(0);
        let mut levels: Vec<Vec<Vec<String>>> = vec![Vec::new(); max_level + 1];
        for (c, members) in components.iter().enumerate() {
            levels[level_of[c]].push(
                members
                    .iter()
                    .map(|&v| self.names[v].clone())
                    .collect::<Vec<_>>(),
            );
        }
        if self.names.is_empty() {
            levels.clear();
        }
        levels
    }

    /// Content-addressed cache keys for summaries: for every procedure, a
    /// stable hash over the procedure's own canonical form and the canonical
    /// forms of everything it can transitively call.  Procedures of the same
    /// SCC share a key (their summaries are one fixpoint).
    pub fn cone_fingerprints(&self, program: &Program) -> HashMap<String, u64> {
        let own: HashMap<&str, u64> = program
            .procedures
            .iter()
            .map(|p| (p.name.as_str(), procedure_fingerprint(p)))
            .collect();
        let components = self.scc_indices();
        let mut component_of = vec![0usize; self.names.len()];
        for (c, members) in components.iter().enumerate() {
            for &v in members {
                component_of[v] = c;
            }
        }
        let mut component_fp = vec![0u64; components.len()];
        let mut result = HashMap::new();
        // Reverse topological order: callee components are hashed first.
        for (c, members) in components.iter().enumerate() {
            let mut hasher = StableHasher::new();
            hasher.write_str("sil-summary-cone-v1");
            // Hash the members in name order, not declaration order, so the
            // fingerprint of a multi-procedure SCC is stable when the source
            // file reorders its procedure declarations.
            let mut member_names: Vec<&str> =
                members.iter().map(|&v| self.names[v].as_str()).collect();
            member_names.sort_unstable();
            for name in member_names {
                hasher.write_str(name);
                hasher.write_u64(own.get(name).copied().unwrap_or(0));
            }
            let mut callee_fps: BTreeSet<u64> = BTreeSet::new();
            for &v in members {
                for &w in &self.callees[v] {
                    let target = component_of[w];
                    if target != c {
                        callee_fps.insert(component_fp[target]);
                    }
                }
            }
            for fp in callee_fps {
                hasher.write_u64(fp);
            }
            component_fp[c] = hasher.finish();
            for &v in members {
                result.insert(self.names[v].clone(), component_fp[c]);
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sil_lang::frontend;

    fn graph_of(src: &str) -> (CallGraph, sil_lang::Program) {
        let (program, _) = frontend(src).unwrap();
        (CallGraph::of_program(&program), program)
    }

    const DIAMOND: &str = r#"
program diamond
procedure leaf_a(t: handle)
begin
  t.value := 1
end
procedure leaf_b(t: handle)
begin
  t.value := 2
end
procedure mid(t: handle)
begin
  leaf_a(t);
  leaf_b(t)
end
procedure main()
  root: handle
begin
  root := new();
  mid(root);
  leaf_a(root)
end
"#;

    const MUTUAL: &str = r#"
program mutual
procedure even(t: handle)
  l: handle
begin
  if t <> nil then
  begin
    l := t.left;
    odd(l)
  end
end
procedure odd(t: handle)
  r: handle
begin
  if t <> nil then
  begin
    r := t.right;
    even(r)
  end
end
procedure main()
  root: handle
begin
  root := new();
  even(root)
end
"#;

    #[test]
    fn edges_cover_calls_and_function_assignments() {
        let (graph, _) = graph_of(sil_lang::testsrc::ADD_AND_REVERSE);
        let main_callees = graph.callees_of("main");
        assert!(main_callees.contains(&"add_n"), "{main_callees:?}");
        assert!(main_callees.contains(&"reverse"));
        // build is called through a function assignment `root := build(i)`
        assert!(main_callees.contains(&"build"));
        assert_eq!(graph.callees_of("add_n"), vec!["add_n"]);
    }

    #[test]
    fn sccs_come_out_bottom_up() {
        let (graph, _) = graph_of(DIAMOND);
        let sccs = graph.sccs();
        let position = |name: &str| {
            sccs.iter()
                .position(|c| c.iter().any(|n| n == name))
                .unwrap()
        };
        assert!(position("leaf_a") < position("mid"));
        assert!(position("leaf_b") < position("mid"));
        assert!(position("mid") < position("main"));
        assert_eq!(sccs.len(), 4, "four singleton SCCs: {sccs:?}");
    }

    #[test]
    fn mutual_recursion_is_one_component() {
        let (graph, _) = graph_of(MUTUAL);
        let sccs = graph.sccs();
        let even_odd = sccs.iter().find(|c| c.iter().any(|n| n == "even")).unwrap();
        assert_eq!(even_odd.len(), 2, "{sccs:?}");
        assert!(even_odd.iter().any(|n| n == "odd"));
    }

    #[test]
    fn levels_are_a_valid_parallel_schedule() {
        let (graph, _) = graph_of(DIAMOND);
        let levels = graph.scc_levels();
        assert_eq!(levels.len(), 3, "{levels:?}");
        // level 0: both leaves, independent of each other
        assert_eq!(levels[0].len(), 2);
        // every SCC only calls into strictly earlier levels
        for (k, level) in levels.iter().enumerate() {
            for scc in level {
                for proc in scc {
                    for callee in graph.callees_of(proc) {
                        if scc.iter().any(|n| n == callee) {
                            continue;
                        }
                        let callee_level = levels
                            .iter()
                            .position(|l| l.iter().any(|c| c.iter().any(|n| n == callee)))
                            .unwrap();
                        assert!(callee_level < k, "{proc} -> {callee}");
                    }
                }
            }
        }
    }

    #[test]
    fn cone_fingerprints_are_content_addressed() {
        let (graph, program) = graph_of(DIAMOND);
        let fps = graph.cone_fingerprints(&program);
        assert_eq!(fps.len(), 4);

        // Changing a leaf changes every cone above it but not its sibling.
        let changed_src = DIAMOND.replace("t.value := 1", "t.value := 9");
        let (changed_graph, changed_program) = graph_of(&changed_src);
        let changed = changed_graph.cone_fingerprints(&changed_program);
        assert_ne!(fps["leaf_a"], changed["leaf_a"]);
        assert_ne!(fps["mid"], changed["mid"]);
        assert_ne!(fps["main"], changed["main"]);
        assert_eq!(fps["leaf_b"], changed["leaf_b"]);
    }

    #[test]
    fn mutually_recursive_procedures_share_a_cone() {
        let (graph, program) = graph_of(MUTUAL);
        let fps = graph.cone_fingerprints(&program);
        assert_eq!(fps["even"], fps["odd"]);
        assert_ne!(fps["even"], fps["main"]);
    }

    /// A mutual pair that sits above a shared leaf, plus a self-recursive
    /// procedure and a procedure unreachable from `main`.
    const LAYERED: &str = r#"
program layered
procedure leaf(t: handle)
begin
  t.value := 1
end
procedure ping(t: handle)
  l: handle
begin
  if t <> nil then
  begin
    leaf(t);
    l := t.left;
    pong(l)
  end
end
procedure pong(t: handle)
  r: handle
begin
  if t <> nil then
  begin
    r := t.right;
    ping(r)
  end
end
procedure spin(t: handle)
  l: handle
begin
  if t <> nil then
  begin
    l := t.left;
    spin(l)
  end
end
procedure orphan(t: handle)
begin
  leaf(t)
end
procedure main()
  root: handle
begin
  root := new();
  ping(root);
  spin(root)
end
"#;

    /// LAYERED with its procedure declarations permuted (same program).
    fn reorder_procedures(src: &str, order: &[&str]) -> String {
        let (program, _) = frontend(src).unwrap();
        let mut reordered = program.clone();
        reordered.procedures = order
            .iter()
            .map(|n| program.procedure(n).unwrap().clone())
            .collect();
        sil_lang::pretty::pretty_program(&reordered)
    }

    #[test]
    fn self_recursive_scc_is_a_singleton_with_a_self_edge() {
        let (graph, _) = graph_of(LAYERED);
        let sccs = graph.sccs();
        let spin = sccs.iter().find(|c| c.iter().any(|n| n == "spin")).unwrap();
        assert_eq!(spin.len(), 1, "self recursion stays a singleton: {sccs:?}");
        assert_eq!(graph.callees_of("spin"), vec!["spin"]);
    }

    #[test]
    fn mutual_pair_spans_a_level_above_its_shared_leaf() {
        let (graph, _) = graph_of(LAYERED);
        let levels = graph.scc_levels();
        let level_of = |name: &str| {
            levels
                .iter()
                .position(|l| l.iter().any(|c| c.iter().any(|n| n == name)))
                .unwrap()
        };
        // ping/pong are one SCC strictly above leaf, and main above them.
        assert_eq!(level_of("ping"), level_of("pong"));
        assert!(level_of("ping") > level_of("leaf"));
        assert!(level_of("main") > level_of("ping"));
        // orphan is unreachable from main but still scheduled above leaf.
        assert!(level_of("orphan") > level_of("leaf"));
    }

    #[test]
    fn unreachable_procedures_still_get_cones() {
        let (graph, program) = graph_of(LAYERED);
        let fps = graph.cone_fingerprints(&program);
        assert!(fps.contains_key("orphan"));
        // orphan's cone covers leaf, so editing leaf changes orphan's cone…
        let changed_src = LAYERED.replace("t.value := 1", "t.value := 2");
        let (cg, cp) = graph_of(&changed_src);
        let changed = cg.cone_fingerprints(&cp);
        assert_ne!(fps["orphan"], changed["orphan"]);
        // …while editing orphan itself leaves every reachable cone alone.
        let orphan_src = LAYERED.replace(
            "  leaf(t)\nend\nprocedure main",
            "  leaf(t);\n  leaf(t)\nend\nprocedure main",
        );
        let (og, op) = graph_of(&orphan_src);
        assert_eq!(op.procedures.len(), 6, "edit applied to orphan");
        let orphaned = og.cone_fingerprints(&op);
        for name in ["main", "ping", "pong", "spin", "leaf"] {
            assert_eq!(fps[name], orphaned[name], "{name} cone must not move");
        }
        assert_ne!(fps["orphan"], orphaned["orphan"]);
    }

    #[test]
    fn cone_fingerprints_are_stable_under_procedure_reordering() {
        let (graph, program) = graph_of(LAYERED);
        let fps = graph.cone_fingerprints(&program);
        for order in [
            ["main", "orphan", "spin", "pong", "ping", "leaf"],
            ["pong", "ping", "main", "leaf", "orphan", "spin"],
        ] {
            let shuffled = reorder_procedures(LAYERED, &order);
            let (g, p) = graph_of(&shuffled);
            let got = g.cone_fingerprints(&p);
            for (name, fp) in &fps {
                assert_eq!(got[name], *fp, "{name} cone moved under order {order:?}");
            }
        }
        // The mutual pair is the interesting case: its SCC has two members
        // whose declaration order flips between the two orders above.
        assert_eq!(fps["ping"], fps["pong"]);
    }
}
