//! The abstract state at a program point.
//!
//! A state bundles the path matrix over the live handles with the structural
//! classification of the heap the program has built so far.  Section 3.1 of
//! the paper distinguishes TREE (every node has at most one parent) from DAG
//! (some node has more than one parent, no directed cycle); anything worse is
//! "possibly cyclic" and none of the paper's guarantees apply.
//!
//! To detect transitions the state tracks two conservative node sets, keyed
//! by the handles that name them:
//!
//! * `attached` — handles whose node may already have a parent in the
//!   structure (it was loaded from a field, or stored into a field),
//! * `shared` — handles whose node may currently have **more than one**
//!   parent (storing an already-attached node creates the second parent; the
//!   classification drops back to TREE only when the set empties again, which
//!   reproduces the paper's "a tree may be changed temporarily into a DAG"
//!   observation for the node swap in `reverse`).

use sil_pathmatrix::PathMatrix;
use std::collections::BTreeSet;
use std::fmt;

/// The structural classification of the heap at a program point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StructureKind {
    /// Every node has at most one parent: the guarantees of §3.1 apply and
    /// all three parallelization methods are sound.
    Tree,
    /// Some node may have more than one parent (no cycle).  Disjointness of
    /// left/right subtrees no longer holds; only the "above/below" argument
    /// remains.
    PossiblyDag,
    /// A directed cycle may have been created; no structural guarantee holds.
    PossiblyCyclic,
}

impl StructureKind {
    /// The join (worst case) of two classifications.
    pub fn join(self, other: StructureKind) -> StructureKind {
        self.max(other)
    }

    /// Whether the TREE guarantees hold.
    pub fn is_tree(self) -> bool {
        self == StructureKind::Tree
    }
}

impl fmt::Display for StructureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StructureKind::Tree => write!(f, "TREE"),
            StructureKind::PossiblyDag => write!(f, "DAG?"),
            StructureKind::PossiblyCyclic => write!(f, "CYCLE?"),
        }
    }
}

/// A warning produced by the structural verification part of the analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructureWarning {
    /// The procedure in which the offending statement occurs.
    pub procedure: String,
    /// A rendering of the offending statement.
    pub statement: String,
    /// The classification after the statement.
    pub kind: StructureKind,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for StructureWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}: `{}` — {}",
            self.kind, self.procedure, self.statement, self.message
        )
    }
}

/// The abstract state: path matrix + structural classification + node
/// bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbstractState {
    /// Relationships among the live handles.
    pub matrix: PathMatrix,
    /// Structural classification of the heap.
    pub structure: StructureKind,
    /// Handles whose node may already have a parent.
    pub attached: BTreeSet<String>,
    /// Handles whose node may have more than one parent.
    pub shared: BTreeSet<String>,
}

impl Default for AbstractState {
    fn default() -> Self {
        AbstractState::new()
    }
}

impl AbstractState {
    /// The initial state: no handles, a TREE (trivially), nothing attached.
    pub fn new() -> AbstractState {
        AbstractState {
            matrix: PathMatrix::new(),
            structure: StructureKind::Tree,
            attached: BTreeSet::new(),
            shared: BTreeSet::new(),
        }
    }

    /// A state over the given handles, all mutually unrelated.
    pub fn with_handles<I, S>(handles: I) -> AbstractState
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        AbstractState {
            matrix: PathMatrix::with_handles(handles),
            ..AbstractState::new()
        }
    }

    /// The control-flow join of two states.
    pub fn join(&self, other: &AbstractState) -> AbstractState {
        AbstractState {
            matrix: self.matrix.join(&other.matrix),
            structure: self.structure.join(other.structure),
            attached: self.attached.union(&other.attached).cloned().collect(),
            shared: self.shared.union(&other.shared).cloned().collect(),
        }
    }

    /// Whether two states carry the same information (fixpoint test).
    pub fn same_as(&self, other: &AbstractState) -> bool {
        self.structure == other.structure
            && self.attached == other.attached
            && self.shared == other.shared
            && self.matrix.same_relations(&other.matrix)
    }

    /// Mark a handle's node as possibly having a parent.
    pub fn mark_attached(&mut self, name: &str) {
        self.attached.insert(name.to_string());
    }

    /// Mark a handle's node as fresh/detached (e.g. after `name := new()`).
    pub fn mark_detached(&mut self, name: &str) {
        self.attached.remove(name);
        self.shared.remove(name);
    }

    /// Whether the node named by `name` may already have a parent.
    pub fn is_attached(&self, name: &str) -> bool {
        self.attached.contains(name)
    }

    /// Record that the handle aliases another (copies its attachment data).
    pub fn copy_node_flags(&mut self, dst: &str, src: &str) {
        if self.attached.contains(src) {
            self.attached.insert(dst.to_string());
        } else {
            self.attached.remove(dst);
        }
        if self.shared.contains(src) {
            self.shared.insert(dst.to_string());
        } else {
            self.shared.remove(dst);
        }
    }

    /// Remove a handle from the matrix and all bookkeeping.
    pub fn remove_handle(&mut self, name: &str) {
        self.matrix.remove_handle(name);
        self.attached.remove(name);
        self.shared.remove(name);
    }

    /// Rename a handle everywhere.
    pub fn rename_handle(&mut self, old: &str, new: &str) {
        self.matrix.rename_handle(old, new);
        if self.attached.remove(old) {
            self.attached.insert(new.to_string());
        }
        if self.shared.remove(old) {
            self.shared.insert(new.to_string());
        }
    }

    /// Degrade the structure classification (never upgrades).
    pub fn degrade_structure(&mut self, kind: StructureKind) {
        self.structure = self.structure.join(kind);
    }

    /// Re-derive the classification from the `shared` set: when no node is
    /// known to be shared any more and no cycle was ever possible, the
    /// structure is a TREE again.
    pub fn reclassify_from_sharing(&mut self) {
        if self.structure == StructureKind::PossiblyDag && self.shared.is_empty() {
            self.structure = StructureKind::Tree;
        }
    }

    /// A short single-line summary used in reports.
    pub fn summary(&self) -> String {
        format!(
            "{} | {} handles, {} relations",
            self.structure,
            self.matrix.handles().len(),
            self.matrix.relation_count()
        )
    }
}

impl fmt::Display for AbstractState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "structure: {}", self.structure)?;
        write!(f, "{}", self.matrix.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sil_pathmatrix::{exact, Dir, PathSet};

    #[test]
    fn structure_join_is_worst_case() {
        use StructureKind::*;
        assert_eq!(Tree.join(Tree), Tree);
        assert_eq!(Tree.join(PossiblyDag), PossiblyDag);
        assert_eq!(PossiblyDag.join(PossiblyCyclic), PossiblyCyclic);
        assert_eq!(PossiblyCyclic.join(Tree), PossiblyCyclic);
        assert!(Tree.is_tree());
        assert!(!PossiblyDag.is_tree());
    }

    #[test]
    fn state_join_merges_everything() {
        let mut a = AbstractState::with_handles(["x", "y"]);
        a.matrix
            .set("x", "y", PathSet::singleton(exact(Dir::Left, 1)));
        a.mark_attached("y");
        let mut b = AbstractState::with_handles(["x", "y"]);
        b.degrade_structure(StructureKind::PossiblyDag);
        b.mark_attached("x");
        let j = a.join(&b);
        assert_eq!(j.structure, StructureKind::PossiblyDag);
        assert!(j.is_attached("x") && j.is_attached("y"));
        assert!(!j.matrix.get("x", "y").is_empty());
        assert!(!j.matrix.get("x", "y").has_definite());
    }

    #[test]
    fn same_as_detects_differences() {
        let a = AbstractState::with_handles(["x"]);
        let mut b = AbstractState::with_handles(["x"]);
        assert!(a.same_as(&b));
        b.mark_attached("x");
        assert!(!a.same_as(&b));
    }

    #[test]
    fn attach_detach_and_copy_flags() {
        let mut s = AbstractState::with_handles(["a", "b"]);
        s.mark_attached("a");
        assert!(s.is_attached("a"));
        s.copy_node_flags("b", "a");
        assert!(s.is_attached("b"));
        s.mark_detached("a");
        assert!(!s.is_attached("a"));
        s.copy_node_flags("b", "a");
        assert!(!s.is_attached("b"));
    }

    #[test]
    fn rename_handle_moves_flags() {
        let mut s = AbstractState::with_handles(["a"]);
        s.mark_attached("a");
        s.shared.insert("a".to_string());
        s.rename_handle("a", "z");
        assert!(s.is_attached("z"));
        assert!(s.shared.contains("z"));
        assert!(!s.is_attached("a"));
        assert!(s.matrix.contains("z"));
    }

    #[test]
    fn reclassify_recovers_tree_only_from_dag() {
        let mut s = AbstractState::new();
        s.degrade_structure(StructureKind::PossiblyDag);
        s.reclassify_from_sharing();
        assert_eq!(s.structure, StructureKind::Tree);

        let mut s = AbstractState::new();
        s.degrade_structure(StructureKind::PossiblyCyclic);
        s.reclassify_from_sharing();
        assert_eq!(s.structure, StructureKind::PossiblyCyclic);

        let mut s = AbstractState::new();
        s.degrade_structure(StructureKind::PossiblyDag);
        s.shared.insert("x".to_string());
        s.reclassify_from_sharing();
        assert_eq!(s.structure, StructureKind::PossiblyDag);
    }

    #[test]
    fn display_contains_structure_and_matrix() {
        let mut s = AbstractState::with_handles(["root", "lside"]);
        s.matrix
            .set("root", "lside", PathSet::singleton(exact(Dir::Left, 1)));
        let rendered = s.to_string();
        assert!(rendered.contains("TREE"));
        assert!(rendered.contains("L1"));
        assert!(s.summary().contains("TREE"));
    }
}
