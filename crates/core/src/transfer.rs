//! Transfer functions: the "analysis functions" of Section 4.
//!
//! For every kind of statement the paper defines a function that maps the
//! path matrix before the statement to the path matrix after it.  This module
//! implements those functions over [`AbstractState`] (matrix + structural
//! classification):
//!
//! * the basic handle statements (`a := nil`, `a := new()`, `a := b`,
//!   `a := b.f`, `a.f := b`, `a.f := nil`) — [`transfer_basic`] /
//!   [`transfer_stmt`],
//! * value and scalar statements (no structural effect),
//! * conditionals (join of the two branches),
//! * `while` loops (the iterative approximation of Figure 3),
//! * procedure and function calls (caller-side effect derived from the
//!   callee's [`crate::summary::ProcSummary`]; the callee's own body is
//!   analyzed by [`crate::interproc`]).
//!
//! The structural verification piggybacks on the same functions: `a.f := b`
//! degrades the classification to "possibly cyclic" when `b` may reach `a`,
//! and to "possibly a DAG" when `b`'s node may already have a parent; it
//! recovers TREE when the sharing it introduced is removed again (the
//! temporary DAG during the node swap in `reverse`, §3.1).

use crate::state::{AbstractState, StructureKind, StructureWarning};
use crate::summary::{compute_summaries, ProcSummary, ReturnSummary};
use sil_lang::ast::*;
use sil_lang::basic::BasicStmt;
use sil_lang::pretty::pretty_stmt;
use sil_lang::types::{ProcSignature, ProgramTypes, Type};
use sil_pathmatrix::{intern, Certainty, Dir, Link, Path, PathSet, Symbol};
use std::cell::RefCell;
use std::collections::HashMap;

/// Maximum number of iterations for the `while`-loop / recursion fixpoints
/// before forcing convergence by weakening.  The widening built into the path
/// domain converges much earlier in practice.
pub const MAX_FIXPOINT_ITERS: usize = 32;

/// Convert a structural field to a path direction.
pub fn dir_of(field: Field) -> Dir {
    match field {
        Field::Left => Dir::Left,
        Field::Right => Dir::Right,
    }
}

/// The "unknown relationship" used when the analysis must assume the worst:
/// the two handles may be the same node or either may be (transitively)
/// below the other.
pub fn unknown_relation() -> PathSet {
    PathSet::from_paths(vec![
        Path::same(Certainty::Possible),
        Path::from_link(Link::at_least(Dir::Down, 1), Certainty::Possible),
    ])
}

// ---------------------------------------------------------------------------
// Basic handle statements
// ---------------------------------------------------------------------------

/// `a := nil` — `a` no longer names any node.
pub fn transfer_assign_nil(state: &AbstractState, a: &str) -> AbstractState {
    let mut next = state.clone();
    next.matrix.clear_handle(a);
    next.mark_detached(a);
    next
}

/// `a := new()` — `a` names a fresh node unrelated to everything.
pub fn transfer_assign_new(state: &AbstractState, a: &str) -> AbstractState {
    let mut next = state.clone();
    next.matrix.clear_handle(a);
    next.mark_detached(a);
    next
}

/// `a := b` — `a` becomes an alias of `b`.
pub fn transfer_assign_copy(state: &AbstractState, a: &str, b: &str) -> AbstractState {
    if a == b {
        return state.clone();
    }
    let mut next = state.clone();
    next.matrix.add_handle(b);
    next.matrix.alias_handle(a, b);
    next.copy_node_flags(a, b);
    next
}

/// `a := b.f` — `a` names the `f`-child of `b`'s node (Figure 2).
pub fn transfer_assign_load(
    state: &AbstractState,
    a: &str,
    b: &str,
    field: Field,
) -> AbstractState {
    // `l := l.left` style statements read the old value of the variable; use
    // a temporary and rename.
    if a == b {
        let tmp = "__load_tmp";
        let mut next = transfer_assign_load(state, tmp, b, field);
        next.remove_handle(a);
        next.rename_handle(tmp, a);
        return next;
    }
    let dir = dir_of(field);
    let sa = intern::intern(a);
    let sb = intern::intern(b);
    let mut next = state.clone();
    next.matrix.add_handle_sym(sb);
    next.matrix.clear_handle_sym(sa);
    next.mark_detached(a);

    let handles: Vec<Symbol> = next.matrix.handles().to_vec();
    let link = Link::exact(dir, 1);

    // b itself: a is exactly its f-child.
    next.matrix.set_sym(
        sb,
        sa,
        PathSet::singleton(Path::from_link(link, Certainty::Definite)),
    );

    for &x in &handles {
        if x == sa || x == sb {
            continue;
        }
        // Paths into a: anything that reaches b reaches a by one more edge.
        let xb = state.matrix.get_sym(x, sb);
        if !xb.is_empty() {
            next.matrix.set_sym(x, sa, xb.map(|p| p.append_link(link)));
        }
        // Paths out of a: re-root b's outgoing paths at the f-child.
        let bx = state.matrix.get_sym(sb, x);
        if !bx.is_empty() {
            let mut stripped = PathSet::empty();
            for p in bx.iter() {
                for &q in p.strip_first(dir).as_slice() {
                    stripped.insert(q);
                }
            }
            next.matrix.set_sym(sa, x, stripped);
        }
    }

    // a's node has (at least) parent b now.
    next.mark_attached(a);
    if !state.structure.is_tree() {
        next.shared.insert(a.to_string());
    }
    next
}

/// `a.f := b` / `a.f := nil` — the structural update.  `src` is `None` for
/// the nil store.  Appends any structure-classification warnings to
/// `warnings`.
pub fn transfer_store_field(
    state: &AbstractState,
    a: &str,
    field: Field,
    src: Option<&str>,
    proc_name: &str,
    stmt_text: &str,
    warnings: &mut Vec<StructureWarning>,
) -> AbstractState {
    let dir = dir_of(field);
    let sa = intern::intern(a);
    let mut next = state.clone();
    next.matrix.add_handle_sym(sa);
    if let Some(b) = src {
        next.matrix.add_handle(b);
    }
    let handles: Vec<Symbol> = next.matrix.handles().to_vec();
    let is_tree = state.structure.is_tree();

    // ---- kill phase: the old `a.f` edge is overwritten -------------------
    // Targets that `a` may have reached through its f edge (pre-kill).
    let mut reached_via_f: Vec<Symbol> = Vec::new();
    // Handles that were definitely the direct f-child of a.
    let mut direct_children: Vec<Symbol> = Vec::new();
    for &y in &handles {
        if y == sa {
            continue;
        }
        let from_a = state.matrix.get_sym(sa, y);
        if from_a.iter().any(|p| p.may_start_with(dir)) {
            reached_via_f.push(y);
        }
        if from_a
            .iter()
            .any(|p| p.is_definite() && p.links() == [Link::exact(dir, 1)])
        {
            direct_children.push(y);
        }
        // Rewrite a's outgoing paths.
        let rewritten = PathSet::from_paths(from_a.iter().filter_map(|p| {
            if p.starts_definitely_with(dir) {
                if is_tree {
                    // The unique path went through the overwritten edge.
                    None
                } else {
                    Some(p.weakened())
                }
            } else if p.may_start_with(dir) {
                Some(p.weakened())
            } else {
                Some(*p)
            }
        }));
        next.matrix.set_sym(sa, y, rewritten);
    }
    // Ancestors of a: their paths to anything a reached via f become uncertain.
    for &x in &handles {
        if x == sa || state.matrix.get_sym(x, sa).is_empty() {
            continue;
        }
        for &y in &reached_via_f {
            if y == x {
                continue;
            }
            let entry = next.matrix.get_sym(x, y);
            if !entry.is_empty() {
                next.matrix.set_sym(x, y, entry.weakened());
            }
        }
    }
    // The node that was the direct f-child loses this parent.
    for &c in &direct_children {
        let c = c.as_str();
        if next.shared.contains(c) {
            next.shared.remove(c);
        } else if is_tree {
            next.mark_detached(c);
        }
    }

    // ---- gen phase: the new edge a --f--> b -------------------------------
    if let Some(b) = src {
        // Cycle check: if b can reach a (or is a), the new edge closes a cycle.
        if b == a || !state.matrix.get(b, a).is_empty() {
            next.degrade_structure(StructureKind::PossiblyCyclic);
            warnings.push(StructureWarning {
                procedure: proc_name.to_string(),
                statement: stmt_text.to_string(),
                kind: StructureKind::PossiblyCyclic,
                message: format!(
                    "`{b}` may be (or reach) an ancestor of `{a}`; the store may create a cycle"
                ),
            });
        }
        // DAG check: if b's node may already have a parent, it now has two.
        // The node may be named by other handles too (any handle that may be
        // the same node), so the attachment facts of those aliases count as
        // well and are updated alongside.
        let sbb = intern::intern(b);
        let aliases_of_b: Vec<&'static str> = handles
            .iter()
            .filter(|&&x| {
                x == sbb
                    || state.matrix.get_sym(x, sbb).may_be_same()
                    || state.matrix.get_sym(sbb, x).may_be_same()
            })
            .map(|x| x.as_str())
            .collect();
        if aliases_of_b.iter().any(|x| next.is_attached(x)) {
            next.shared.insert(b.to_string());
            next.degrade_structure(StructureKind::PossiblyDag);
            warnings.push(StructureWarning {
                procedure: proc_name.to_string(),
                statement: stmt_text.to_string(),
                kind: StructureKind::PossiblyDag,
                message: format!(
                    "`{b}` may already be attached elsewhere; the store may create a DAG"
                ),
            });
        }
        for alias in &aliases_of_b {
            next.mark_attached(alias);
        }

        // New paths: every x that reaches a, composed with the new edge and
        // every path out of b.
        let link_path = Path::from_link(Link::exact(dir, 1), Certainty::Definite);
        let mut sources: Vec<(Symbol, PathSet)> =
            vec![(sa, PathSet::singleton(Path::same(Certainty::Definite)))];
        for &x in &handles {
            if x == sa {
                continue;
            }
            let xa = state.matrix.get_sym(x, sa);
            if !xa.is_empty() {
                sources.push((x, xa));
            }
        }
        let mut targets: Vec<(Symbol, PathSet)> =
            vec![(sbb, PathSet::singleton(Path::same(Certainty::Definite)))];
        for &y in &handles {
            if y == sbb {
                continue;
            }
            let by = state.matrix.get_sym(sbb, y);
            if !by.is_empty() {
                targets.push((y, by));
            }
        }
        for &(x, xa) in &sources {
            for &(y, by) in &targets {
                if x == y {
                    continue;
                }
                let mut entry = next.matrix.get_sym(x, y);
                for p in xa.iter() {
                    for q in by.iter() {
                        entry.insert(p.concat(&link_path).concat(q));
                    }
                }
                next.matrix.set_sym(x, y, entry);
            }
        }
    }

    next.reclassify_from_sharing();
    next
}

/// Apply a basic (non-call) statement.  Call statements are handled by
/// [`Analyzer::transfer`], which knows the callee summaries.
pub fn transfer_basic(
    state: &AbstractState,
    basic: &BasicStmt<'_>,
    proc_name: &str,
    stmt_text: &str,
    warnings: &mut Vec<StructureWarning>,
) -> AbstractState {
    match basic {
        BasicStmt::AssignNil { dst } => transfer_assign_nil(state, dst),
        BasicStmt::AssignNew { dst } => transfer_assign_new(state, dst),
        BasicStmt::AssignCopy { dst, src } => transfer_assign_copy(state, dst, src),
        BasicStmt::AssignLoad { dst, src, field } => transfer_assign_load(state, dst, src, *field),
        BasicStmt::StoreField { dst, field, src } => transfer_store_field(
            state,
            dst,
            *field,
            Some(src),
            proc_name,
            stmt_text,
            warnings,
        ),
        BasicStmt::StoreFieldNil { dst, field } => {
            transfer_store_field(state, dst, *field, None, proc_name, stmt_text, warnings)
        }
        // Value and scalar statements do not change the heap structure.
        BasicStmt::ValueLoad { .. }
        | BasicStmt::ValueStore { .. }
        | BasicStmt::ScalarAssign { .. } => state.clone(),
        // Calls must go through the Analyzer.
        BasicStmt::FuncAssign { .. } | BasicStmt::ProcCall { .. } => state.clone(),
    }
}

/// Apply a single *basic* statement to a state, without procedure-call
/// knowledge.  This is the standalone entry point used by the figure
/// reproductions and by property tests; real programs are analyzed through
/// [`Analyzer`].
pub fn transfer_stmt(
    state: &AbstractState,
    stmt: &Stmt,
    sig: &ProcSignature,
    warnings: &mut Vec<StructureWarning>,
) -> AbstractState {
    match BasicStmt::classify(stmt, sig) {
        Some(basic) => transfer_basic(state, &basic, &sig.name, &pretty_stmt(stmt), warnings),
        None => state.clone(),
    }
}

// ---------------------------------------------------------------------------
// The Analyzer: whole-statement transfer with call effects
// ---------------------------------------------------------------------------

/// Observed information about one call site (used by the interprocedural
/// driver to build callee entry contexts).
#[derive(Debug, Clone)]
pub struct CallSite {
    pub caller: String,
    pub callee: String,
    /// Handle actuals by callee formal name.
    pub handle_actuals: Vec<(String, String)>,
    /// The abstract state just before the call.
    pub state_before: AbstractState,
}

/// The statement-level analyzer: applies transfer functions to whole
/// statements, including conditionals, loops and calls.
///
/// Call statements use the callee's [`ProcSummary`] (argument modes) and
/// [`ReturnSummary`] for their caller-side effect, and are reported to the
/// interprocedural driver through an internal call-site log.
pub struct Analyzer<'a> {
    pub program: &'a Program,
    pub types: &'a ProgramTypes,
    pub summaries: HashMap<String, ProcSummary>,
    pub return_summaries: RefCell<HashMap<String, ReturnSummary>>,
    /// The structural classification each analyzed procedure leaves behind at
    /// exit (filled in by the interprocedural driver; absent means "not yet
    /// analyzed", treated optimistically and refined across rounds).
    pub exit_structures: RefCell<HashMap<String, StructureKind>>,
    call_sites: RefCell<Vec<CallSite>>,
    record_calls: bool,
}

impl<'a> Analyzer<'a> {
    /// Build an analyzer for a (normalized, type-checked) program.
    pub fn new(program: &'a Program, types: &'a ProgramTypes) -> Analyzer<'a> {
        Analyzer::with_summaries(program, types, compute_summaries(program, types))
    }

    /// Build an analyzer with precomputed argument-mode summaries.
    ///
    /// Summaries are pure functions of the procedure text and its transitive
    /// callees, so a memoizing service (see `sil-engine`) can supply them
    /// from a content-addressed cache instead of paying
    /// [`compute_summaries`] again.
    pub fn with_summaries(
        program: &'a Program,
        types: &'a ProgramTypes,
        summaries: HashMap<String, ProcSummary>,
    ) -> Analyzer<'a> {
        Analyzer::with_tables(program, types, summaries, HashMap::new(), HashMap::new())
    }

    /// Build an analyzer with every dynamic table pre-seeded.
    ///
    /// The interprocedural driver walks independent call-graph components on
    /// separate threads; each task gets its own analyzer seeded with the
    /// round's current view of the function-return summaries and exit
    /// structures (the analyzer itself holds them in thread-local
    /// [`RefCell`]s).
    pub fn with_tables(
        program: &'a Program,
        types: &'a ProgramTypes,
        summaries: HashMap<String, ProcSummary>,
        return_summaries: HashMap<String, ReturnSummary>,
        exit_structures: HashMap<String, StructureKind>,
    ) -> Analyzer<'a> {
        Analyzer {
            program,
            types,
            summaries,
            return_summaries: RefCell::new(return_summaries),
            exit_structures: RefCell::new(exit_structures),
            call_sites: RefCell::new(Vec::new()),
            record_calls: true,
        }
    }

    /// Enable or disable call-site recording (the interprocedural driver
    /// enables it; one-off uses such as the parallelizer disable it).
    pub fn set_record_calls(&mut self, record: bool) {
        self.record_calls = record;
    }

    /// Drain the call sites observed since the last call.
    pub fn take_call_sites(&self) -> Vec<CallSite> {
        std::mem::take(&mut *self.call_sites.borrow_mut())
    }

    /// Install a function-return summary (computed by the interprocedural
    /// driver after analyzing the function body).
    pub fn set_return_summary(&self, func: &str, summary: ReturnSummary) {
        self.return_summaries
            .borrow_mut()
            .insert(func.to_string(), summary);
    }

    /// Install the structural classification a procedure leaves at exit.
    pub fn set_exit_structure(&self, proc: &str, kind: StructureKind) {
        self.exit_structures
            .borrow_mut()
            .insert(proc.to_string(), kind);
    }

    /// The summary of a procedure, if known.
    pub fn summary(&self, name: &str) -> Option<&ProcSummary> {
        self.summaries.get(name)
    }

    /// Transfer a whole statement.
    pub fn transfer(
        &self,
        state: &AbstractState,
        stmt: &Stmt,
        sig: &ProcSignature,
        warnings: &mut Vec<StructureWarning>,
    ) -> AbstractState {
        match stmt {
            Stmt::Assign { .. } => match BasicStmt::classify(stmt, sig) {
                Some(BasicStmt::FuncAssign { dst, func, args }) => {
                    self.transfer_func_assign(state, dst, func, args, sig, warnings)
                }
                Some(basic) => {
                    transfer_basic(state, &basic, &sig.name, &pretty_stmt(stmt), warnings)
                }
                None => state.clone(),
            },
            Stmt::Call { proc, args, .. } => self.transfer_call(state, proc, args, sig, warnings),
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                let then_state = self.transfer(state, then_branch, sig, warnings);
                let else_state = match else_branch {
                    Some(e) => self.transfer(state, e, sig, warnings),
                    None => state.clone(),
                };
                then_state.join(&else_state)
            }
            Stmt::While { body, .. } => {
                // Iterative approximation (Figure 3): join of 0, 1, 2, ...
                // iterations until the matrix stabilizes.
                let mut current = state.clone();
                for _ in 0..MAX_FIXPOINT_ITERS {
                    let after_body = self.transfer(&current, body, sig, warnings);
                    let next = current.join(&after_body);
                    if next.same_as(&current) {
                        return current;
                    }
                    current = next;
                }
                // Safety net: force convergence by weakening every relation.
                let mut widened = current.clone();
                widened.matrix = widened.matrix.weakened();
                widened
            }
            Stmt::Block { stmts, .. } => {
                let mut current = state.clone();
                for s in stmts {
                    current = self.transfer(&current, s, sig, warnings);
                }
                current
            }
            // A parallel statement's arms were proven independent (or will be
            // re-verified); their combined effect equals any sequential order.
            Stmt::Par { arms, .. } => {
                let mut current = state.clone();
                for s in arms {
                    current = self.transfer(&current, s, sig, warnings);
                }
                current
            }
        }
    }

    /// Analyze a block, returning the state *before* each top-level statement
    /// and the exit state.  Used by the parallelizer.
    pub fn states_through_block(
        &self,
        entry: &AbstractState,
        stmts: &[Stmt],
        sig: &ProcSignature,
        warnings: &mut Vec<StructureWarning>,
    ) -> (Vec<AbstractState>, AbstractState) {
        let mut before = Vec::with_capacity(stmts.len());
        let mut current = entry.clone();
        for s in stmts {
            before.push(current.clone());
            current = self.transfer(&current, s, sig, warnings);
        }
        (before, current)
    }

    fn handle_actuals(&self, callee: &str, args: &[Expr]) -> Vec<(String, String)> {
        let Some(callee_sig) = self.types.proc(callee) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for ((formal, ty), arg) in callee_sig.params.iter().zip(args.iter()) {
            if *ty == Type::Handle {
                if let Some(var) = arg.as_var() {
                    out.push((formal.clone(), var.to_string()));
                }
            }
        }
        out
    }

    /// Caller-side effect of `callee(args)` on the abstract state.
    fn transfer_call(
        &self,
        state: &AbstractState,
        callee: &str,
        args: &[Expr],
        sig: &ProcSignature,
        warnings: &mut Vec<StructureWarning>,
    ) -> AbstractState {
        let handle_actuals = self.handle_actuals(callee, args);
        if self.record_calls {
            self.call_sites.borrow_mut().push(CallSite {
                caller: sig.name.clone(),
                callee: callee.to_string(),
                handle_actuals: handle_actuals.clone(),
                state_before: state.clone(),
            });
        }
        let Some(summary) = self.summaries.get(callee) else {
            return state.clone();
        };
        if !summary.has_structural_update() {
            // Value updates and reads leave the path matrix untouched.
            return state.clone();
        }

        // Structural updates: conservatively account for the callee
        // rearranging (only) the part of the heap reachable from its
        // arguments.  Handle variables of the caller keep naming the same
        // nodes (call-by-value), so `S` relationships survive; link paths
        // into the affected region are weakened and a possible downward path
        // is added from anything that can reach an update argument to
        // anything reachable from any argument.
        let mut next = state.clone();
        // If the callee is known to leave the structure degraded (e.g. it
        // permanently shares a node), the caller's classification degrades
        // too, and stays degraded (the marker below keeps
        // `reclassify_from_sharing` from undoing it).
        if let Some(exit_kind) = self.exit_structures.borrow().get(callee).copied() {
            if !exit_kind.is_tree() {
                next.degrade_structure(exit_kind);
                next.shared.insert(format!("<shared via {callee}>"));
            }
        }
        let update_actuals: Vec<Symbol> = handle_actuals
            .iter()
            .filter(|(formal, _)| {
                summary
                    .handle_args
                    .get(formal)
                    .is_some_and(|m| m.is_structural())
            })
            .map(|(_, actual)| intern::intern(actual))
            .collect();
        let all_actuals: Vec<Symbol> = handle_actuals
            .iter()
            .map(|(_, a)| intern::intern(a))
            .collect();
        if update_actuals.is_empty() {
            return next;
        }
        let handles: Vec<Symbol> = next.matrix.handles().to_vec();
        let is_tree = state.structure.is_tree();
        let can_reach_update: Vec<Symbol> = handles
            .iter()
            .filter(|&&x| {
                update_actuals
                    .iter()
                    .any(|&u| x == u || !state.matrix.get_sym(x, u).is_empty())
            })
            .copied()
            .collect();
        // Handles naming nodes the callee can actually rearrange: nodes
        // *strictly below* some argument.  Edges on the path from the caller
        // down to an argument node belong to nodes the callee cannot reach
        // (in a TREE), so relations ending at the argument itself survive.
        let in_call_reach: Vec<Symbol> = handles
            .iter()
            .filter(|&&y| {
                all_actuals.iter().any(|&g| {
                    state.matrix.get_sym(g, y).may_be_descendant()
                        || (!is_tree && (y == g || state.matrix.get_sym(g, y).may_be_same()))
                })
            })
            .copied()
            .collect();
        for &x in &can_reach_update {
            for &y in &in_call_reach {
                if x == y {
                    continue;
                }
                let old = state.matrix.get_sym(x, y);
                let mut entry = PathSet::empty();
                for p in old.iter() {
                    if p.is_same() {
                        entry.insert(*p);
                    } else {
                        entry.insert(p.weakened());
                    }
                }
                entry.insert(Path::from_link(
                    Link::at_least(Dir::Down, 1),
                    Certainty::Possible,
                ));
                next.matrix.set_sym(x, y, entry);
            }
        }
        // Nodes inside the call's reach may have been re-attached.
        for &y in &in_call_reach {
            next.mark_attached(y.as_str());
        }
        let _ = warnings;
        next
    }

    /// Caller-side effect of `dst := callee(args)`.
    fn transfer_func_assign(
        &self,
        state: &AbstractState,
        dst: &str,
        callee: &str,
        args: &[Expr],
        sig: &ProcSignature,
        warnings: &mut Vec<StructureWarning>,
    ) -> AbstractState {
        let mut next = self.transfer_call(state, callee, args, sig, warnings);
        if !sig.is_handle(dst) {
            return next;
        }
        // The destination handle takes on the relationships described by the
        // callee's return summary (or the unknown relationship otherwise).
        next.matrix.clear_handle(dst);
        next.mark_detached(dst);
        let handle_actuals = self.handle_actuals(callee, args);
        let return_summaries = self.return_summaries.borrow();
        match return_summaries.get(callee) {
            Some(summary) => {
                if !summary.fresh {
                    next.mark_attached(dst);
                }
                for (formal, to_ret, from_ret) in &summary.relations {
                    let Some((_, actual)) = handle_actuals.iter().find(|(f, _)| f == formal) else {
                        continue;
                    };
                    if !to_ret.is_empty() {
                        next.matrix.set(actual, dst, *to_ret);
                    }
                    if !from_ret.is_empty() {
                        next.matrix.set(dst, actual, *from_ret);
                    }
                }
            }
            None => {
                // Unknown function: assume the result may relate to any
                // handle argument in any way.
                next.mark_attached(dst);
                for (_, actual) in &handle_actuals {
                    next.matrix.set(actual, dst, unknown_relation());
                    next.matrix.set(dst, actual, unknown_relation());
                }
            }
        }
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sil_lang::parser::parse_stmt;
    use sil_lang::types::ProcSignature;
    use std::collections::HashMap as StdHashMap;

    fn sig(handles: &[&str], ints: &[&str]) -> ProcSignature {
        let mut vars = StdHashMap::new();
        for h in handles {
            vars.insert(h.to_string(), Type::Handle);
        }
        for i in ints {
            vars.insert(i.to_string(), Type::Int);
        }
        ProcSignature {
            name: "test".into(),
            params: vec![],
            return_type: None,
            vars,
        }
    }

    fn apply(state: &AbstractState, src: &str, sig: &ProcSignature) -> AbstractState {
        let stmt = parse_stmt(src).unwrap();
        let mut warnings = Vec::new();
        transfer_stmt(state, &stmt, sig, &mut warnings)
    }

    fn apply_with_warnings(
        state: &AbstractState,
        src: &str,
        sig: &ProcSignature,
    ) -> (AbstractState, Vec<StructureWarning>) {
        let stmt = parse_stmt(src).unwrap();
        let mut warnings = Vec::new();
        let next = transfer_stmt(state, &stmt, sig, &mut warnings);
        (next, warnings)
    }

    /// Figure 2 of the paper, end to end: starting from the initial matrix of
    /// Figure 2(a), apply `d := a.right` and `e := d.left` and compare with
    /// the matrices of Figures 2(b) and 2(c).
    #[test]
    fn figure_2_handle_assignments() {
        let s = sig(&["a", "b", "c", "d", "e"], &[]);
        let mut state = AbstractState::with_handles(["a", "b", "c"]);
        // p[a,b] = L1 L+ L1 (three or more lefts), p[a,c] = R1 D+
        state.matrix.set(
            "a",
            "b",
            PathSet::singleton(Path::from_links(
                vec![
                    Link::exact(Dir::Left, 1),
                    Link::at_least(Dir::Left, 1),
                    Link::exact(Dir::Left, 1),
                ],
                Certainty::Definite,
            )),
        );
        state.matrix.set(
            "a",
            "c",
            PathSet::singleton(Path::from_links(
                vec![Link::exact(Dir::Right, 1), Link::at_least(Dir::Down, 1)],
                Certainty::Definite,
            )),
        );

        // Figure 2(b): d := a.right
        let state_b = apply(&state, "d := a.right", &s);
        assert_eq!(state_b.matrix.get("a", "d").to_string(), "R1");
        assert_eq!(state_b.matrix.get("d", "c").to_string(), "D+");
        assert!(state_b.matrix.get("d", "b").is_empty());
        assert!(state_b.matrix.get("d", "a").is_empty());
        // the left-subtree path to b is untouched
        assert_eq!(state_b.matrix.get("a", "b").to_string(), "L3+");

        // Figure 2(c): e := d.left
        let state_c = apply(&state_b, "e := d.left", &s);
        assert_eq!(state_c.matrix.get("d", "e").to_string(), "L1");
        assert_eq!(state_c.matrix.get("a", "e").to_string(), "R1L1");
        // p[e,c] = { S?, D+? } — e and c may be the same node or c may be below e
        let ec = state_c.matrix.get("e", "c");
        assert_eq!(ec.to_string(), "S?,D+?");
        assert!(!ec.has_definite());
        // e is unrelated to b
        assert!(state_c.matrix.unrelated("e", "b"));
    }

    #[test]
    fn nil_and_new_sever_relations() {
        let s = sig(&["a", "b"], &[]);
        let mut state = AbstractState::with_handles(["a", "b"]);
        state.matrix.set(
            "a",
            "b",
            PathSet::singleton(sil_pathmatrix::exact(Dir::Left, 1)),
        );
        let after = apply(&state, "b := nil", &s);
        assert!(after.matrix.get("a", "b").is_empty());
        let after = apply(&state, "b := new()", &s);
        assert!(after.matrix.get("a", "b").is_empty());
        assert!(!after.is_attached("b"));
    }

    #[test]
    fn copy_aliases() {
        let s = sig(&["a", "b", "c"], &[]);
        let mut state = AbstractState::with_handles(["a", "b", "c"]);
        state.matrix.set(
            "a",
            "b",
            PathSet::singleton(sil_pathmatrix::exact(Dir::Left, 2)),
        );
        let after = apply(&state, "c := b", &s);
        assert!(after.matrix.get("c", "b").must_be_same());
        assert_eq!(after.matrix.get("a", "c").to_string(), "L2");
    }

    #[test]
    fn self_load_uses_old_value() {
        // Figure 3's loop body: l := l.left
        let s = sig(&["h", "l"], &[]);
        let mut state = AbstractState::with_handles(["h", "l"]);
        state.matrix.set(
            "h",
            "l",
            PathSet::singleton(sil_pathmatrix::exact(Dir::Left, 1)),
        );
        let after = apply(&state, "l := l.left", &s);
        assert_eq!(after.matrix.get("h", "l").to_string(), "L2");
    }

    #[test]
    fn store_establishes_relation_and_attaches() {
        let s = sig(&["t", "a"], &[]);
        let state = AbstractState::with_handles(["t", "a"]);
        let (after, warnings) = apply_with_warnings(&state, "t.left := a", &s);
        assert_eq!(after.matrix.get("t", "a").to_string(), "L1");
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(after.structure, StructureKind::Tree);
        assert!(after.is_attached("a"));
    }

    #[test]
    fn store_composes_with_ancestors_and_descendants() {
        // r := root, c below b: root.left := b must relate root to b and c.
        let s = sig(&["root", "r", "b", "c"], &[]);
        let mut state = AbstractState::with_handles(["root", "r", "b", "c"]);
        state.matrix.alias_handle("r", "root");
        state.matrix.set(
            "b",
            "c",
            PathSet::singleton(sil_pathmatrix::at_least(Dir::Down, 1)),
        );
        let after = apply(&state, "root.left := b", &s);
        assert_eq!(after.matrix.get("root", "b").to_string(), "L1");
        assert_eq!(after.matrix.get("r", "b").to_string(), "L1");
        assert_eq!(after.matrix.get("root", "c").to_string(), "L1D+");
    }

    #[test]
    fn store_detects_cycle() {
        let s = sig(&["t", "d"], &[]);
        let mut state = AbstractState::with_handles(["t", "d"]);
        state.matrix.set(
            "t",
            "d",
            PathSet::singleton(sil_pathmatrix::exact(Dir::Left, 2)),
        );
        // d is below t; t is therefore an ancestor of d: d.left := t closes a cycle.
        let (after, warnings) = apply_with_warnings(&state, "d.left := t", &s);
        assert_eq!(after.structure, StructureKind::PossiblyCyclic);
        assert!(warnings
            .iter()
            .any(|w| w.kind == StructureKind::PossiblyCyclic));
        // self-loop
        let (after, _) = apply_with_warnings(&state, "t.left := t", &s);
        assert_eq!(after.structure, StructureKind::PossiblyCyclic);
    }

    #[test]
    fn store_detects_dag_when_node_already_attached() {
        let s = sig(&["t", "u", "a"], &[]);
        let state = AbstractState::with_handles(["t", "u", "a"]);
        let after = apply(&state, "t.left := a", &s);
        assert_eq!(after.structure, StructureKind::Tree);
        let (after2, warnings) = apply_with_warnings(&after, "u.right := a", &s);
        assert_eq!(after2.structure, StructureKind::PossiblyDag);
        assert!(warnings
            .iter()
            .any(|w| w.kind == StructureKind::PossiblyDag));
    }

    #[test]
    fn node_swap_is_temporarily_a_dag_then_a_tree_again() {
        // The body of `reverse` (Figure 7): l := h.left; r := h.right;
        // h.left := r; h.right := l.  The paper notes the structure is
        // temporarily a DAG and a tree again afterwards.
        let s = sig(&["h", "l", "r"], &[]);
        let state = AbstractState::with_handles(["h"]);
        let s1 = apply(&state, "l := h.left", &s);
        let s2 = apply(&s1, "r := h.right", &s);
        assert_eq!(s2.structure, StructureKind::Tree);
        let (s3, w3) = apply_with_warnings(&s2, "h.left := r", &s);
        assert_eq!(s3.structure, StructureKind::PossiblyDag);
        assert!(!w3.is_empty());
        let (s4, _) = apply_with_warnings(&s3, "h.right := l", &s);
        assert_eq!(s4.structure, StructureKind::Tree, "{}", s4.matrix.render());
        // and the matrix reflects the swap: l is now the right child, r the left
        assert!(s4
            .matrix
            .get("h", "l")
            .iter()
            .any(|p| p.to_string() == "R1"));
        assert!(s4
            .matrix
            .get("h", "r")
            .iter()
            .any(|p| p.to_string() == "L1"));
    }

    #[test]
    fn store_nil_kills_paths_through_edge() {
        let s = sig(&["t", "l", "x"], &[]);
        let state = AbstractState::with_handles(["t"]);
        let s1 = apply(&state, "l := t.left", &s);
        assert_eq!(s1.matrix.get("t", "l").to_string(), "L1");
        let s2 = apply(&s1, "t.left := nil", &s);
        assert!(
            s2.matrix.get("t", "l").is_empty(),
            "severing the edge removes the definite path: {}",
            s2.matrix.get("t", "l")
        );
        // and l's node no longer has a (known) parent
        assert!(!s2.is_attached("l"));
    }

    #[test]
    fn kill_weakens_ancestor_paths() {
        let s = sig(&["root", "t", "x"], &[]);
        let mut state = AbstractState::with_handles(["root", "t", "x"]);
        state.matrix.set(
            "root",
            "t",
            PathSet::singleton(sil_pathmatrix::exact(Dir::Left, 1)),
        );
        state.matrix.set(
            "t",
            "x",
            PathSet::singleton(sil_pathmatrix::exact(Dir::Left, 2)),
        );
        state.matrix.set(
            "root",
            "x",
            PathSet::singleton(sil_pathmatrix::exact(Dir::Left, 3)),
        );
        let after = apply(&state, "t.left := nil", &s);
        // t can no longer reach x (in a tree the L2 path went through t.left)
        assert!(after.matrix.get("t", "x").is_empty());
        // root's path to x may or may not still exist — weakened, not removed
        let rx = after.matrix.get("root", "x");
        assert!(!rx.is_empty());
        assert!(!rx.has_definite());
        // root's path to t is untouched
        assert!(after.matrix.get("root", "t").has_definite());
    }

    #[test]
    fn while_loop_fixpoint_figure_3() {
        // l := h ; while l.left <> nil do l := l.left
        let (program, types) = sil_lang::frontend(sil_lang::testsrc::LEFTMOST_LOOP).unwrap();
        let analyzer = Analyzer::new(&program, &types);
        let sig = types.proc("main").unwrap();
        let mut warnings = Vec::new();
        let mut state = AbstractState::with_handles(["h", "l"]);
        // skip build(): pretend h names the root of a tree.
        let body = parse_stmt("begin l := h; while l.left <> nil do l := l.left end").unwrap();
        state = analyzer.transfer(&state, &body, sig, &mut warnings);
        let hl = state.matrix.get("h", "l");
        // After any number of iterations l is h or some node on the left spine.
        assert!(hl.may_be_same(), "{hl}");
        assert!(
            hl.iter()
                .any(|p| !p.is_same() && p.links().iter().all(|l| l.dir == Dir::Left)),
            "expected a left-spine path, got {hl}"
        );
        // l never ends up strictly above h (it may still *be* h after zero
        // iterations, hence a possible S, but never an ancestor)
        assert!(!state.matrix.get("l", "h").may_be_descendant());
        assert!(warnings.is_empty());
    }

    #[test]
    fn while_loop_terminates_on_growing_paths() {
        let (program, types) = sil_lang::frontend(sil_lang::testsrc::LEFTMOST_LOOP).unwrap();
        let analyzer = Analyzer::new(&program, &types);
        let sig = types.proc("main").unwrap();
        let mut warnings = Vec::new();
        let state = AbstractState::with_handles(["h", "l"]);
        // A loop that keeps descending on alternating sides.
        let body = parse_stmt(
            "begin l := h; while l.left <> nil do begin l := l.left; l := l.right end end",
        )
        .unwrap();
        let out = analyzer.transfer(&state, &body, sig, &mut warnings);
        assert!(!out.matrix.get("h", "l").is_empty());
    }

    #[test]
    fn if_join_weakens_divergent_branches() {
        let s = sig(&["h", "l"], &[]);
        let (program, types) = sil_lang::frontend(sil_lang::testsrc::LEFTMOST_LOOP).unwrap();
        let analyzer = Analyzer::new(&program, &types);
        let mut warnings = Vec::new();
        let state = AbstractState::with_handles(["h", "l"]);
        let stmt = parse_stmt("if h <> nil then l := h.left else l := h.right").unwrap();
        let out = analyzer.transfer(&state, &stmt, &s, &mut warnings);
        let hl = out.matrix.get("h", "l");
        assert!(!hl.has_definite());
        assert!(hl.iter().all(|p| p.min_len() == 1), "{hl}");
    }

    #[test]
    fn value_statements_do_not_change_matrix() {
        let s = sig(&["h"], &["x", "n"]);
        let mut state = AbstractState::with_handles(["h"]);
        state.mark_attached("h");
        let after = apply(&state, "h.value := h.value + n", &s);
        assert!(after.same_as(&state));
        let after = apply(&state, "x := h.value", &s);
        assert!(after.same_as(&state));
        let after = apply(&state, "x := x + 1", &s);
        assert!(after.same_as(&state));
    }

    #[test]
    fn value_only_call_preserves_matrix() {
        let (program, types) = sil_lang::frontend(sil_lang::testsrc::ADD_AND_REVERSE).unwrap();
        let analyzer = Analyzer::new(&program, &types);
        let sig = types.proc("main").unwrap();
        let mut warnings = Vec::new();
        let mut state = AbstractState::with_handles(["root", "lside", "rside"]);
        state.matrix.set(
            "root",
            "lside",
            PathSet::singleton(sil_pathmatrix::exact(Dir::Left, 1)),
        );
        let stmt = parse_stmt("add_n(lside, 1)").unwrap();
        let out = analyzer.transfer(&state, &stmt, sig, &mut warnings);
        assert!(out.matrix.same_relations(&state.matrix));
    }

    #[test]
    fn structural_call_weakens_only_affected_relations() {
        let (program, types) = sil_lang::frontend(sil_lang::testsrc::ADD_AND_REVERSE).unwrap();
        let analyzer = Analyzer::new(&program, &types);
        let sig = types.proc("main").unwrap();
        let mut warnings = Vec::new();
        let mut state = AbstractState::with_handles(["root", "lside", "rside", "inner", "other"]);
        state.matrix.set(
            "root",
            "lside",
            PathSet::singleton(sil_pathmatrix::exact(Dir::Left, 1)),
        );
        state.matrix.set(
            "root",
            "rside",
            PathSet::singleton(sil_pathmatrix::exact(Dir::Right, 1)),
        );
        state.matrix.set(
            "lside",
            "inner",
            PathSet::singleton(sil_pathmatrix::exact(Dir::Left, 1)),
        );
        state.matrix.set(
            "root",
            "inner",
            PathSet::singleton(sil_pathmatrix::exact(Dir::Left, 2)),
        );
        let stmt = parse_stmt("reverse(lside)").unwrap();
        let out = analyzer.transfer(&state, &stmt, sig, &mut warnings);
        // The callee cannot modify the edge from root into its argument node
        // (that edge belongs to a node it cannot reach), so root→lside
        // survives unchanged.
        assert!(out.matrix.get("root", "lside").has_definite());
        // Nodes strictly below the argument may have been rearranged:
        // weakened, not severed.
        assert!(!out.matrix.get("lside", "inner").has_definite());
        assert!(!out.matrix.get("lside", "inner").is_empty());
        assert!(!out.matrix.get("root", "inner").has_definite());
        // rside was not reachable from the argument: untouched.
        assert!(out.matrix.get("root", "rside").has_definite());
        // unrelated handles untouched.
        assert!(out.matrix.unrelated("other", "root"));
    }

    #[test]
    fn function_call_without_summary_is_conservative() {
        let (program, types) = sil_lang::frontend(sil_lang::testsrc::ADD_AND_REVERSE).unwrap();
        let analyzer = Analyzer::new(&program, &types);
        let mut warnings = Vec::new();
        let s = sig(&["root", "d"], &["i"]);
        let state = AbstractState::with_handles(["root", "d"]);
        // build takes an int only, so the result is unrelated to root.
        let stmt = parse_stmt("d := build(i)").unwrap();
        let out = analyzer.transfer(&state, &stmt, &s, &mut warnings);
        assert!(out.matrix.unrelated("root", "d"));
    }

    #[test]
    fn call_sites_are_recorded() {
        let (program, types) = sil_lang::frontend(sil_lang::testsrc::ADD_AND_REVERSE).unwrap();
        let analyzer = Analyzer::new(&program, &types);
        let sig = types.proc("main").unwrap();
        let mut warnings = Vec::new();
        let state = AbstractState::with_handles(["lside"]);
        let stmt = parse_stmt("add_n(lside, 1)").unwrap();
        let _ = analyzer.transfer(&state, &stmt, sig, &mut warnings);
        let sites = analyzer.take_call_sites();
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].callee, "add_n");
        assert_eq!(
            sites[0].handle_actuals,
            vec![("h".to_string(), "lside".to_string())]
        );
        assert!(analyzer.take_call_sites().is_empty(), "drained");
    }
}
