//! The interprocedural analysis and whole-program driver.
//!
//! Each procedure is analyzed under an *entry context*: a path matrix over
//! its handle formals plus the symbolic handles `f*` (relations contributed
//! by the immediate caller's handles) and `f**` (relations contributed by all
//! stacked invocations — the paper's `h*` / `h**` of Figure 7).  Every call
//! site folds the caller's current relationships into the callee's context;
//! recursive calls fold the current formals into `f*` and the previous
//! symbolic handles into `f**`.  The whole program is re-analyzed until all
//! contexts (and function-return summaries) stabilize.

use crate::callgraph::CallGraph;
use crate::state::{AbstractState, StructureKind, StructureWarning};
use crate::summary::{compute_summaries, ProcSummary, ReturnSummary};
use crate::transfer::{Analyzer, CallSite};
use rayon::prelude::*;
use sil_lang::ast::*;
use sil_lang::hash::StableHasher;
use sil_lang::pretty::pretty_stmt;
use sil_lang::types::{ProcSignature, ProgramTypes, Type};
use std::collections::HashMap;
use std::sync::Arc;

/// Maximum number of whole-program rounds before declaring convergence
/// failure (the widened path domain converges in a handful of rounds).
pub const MAX_ROUNDS: usize = 16;

/// The symbolic handle collecting the immediate caller's relations to a
/// formal.
pub fn immediate_symbol(formal: &str) -> String {
    format!("{formal}*")
}

/// The symbolic handle collecting relations from all stacked invocations.
pub fn stacked_symbol(formal: &str) -> String {
    format!("{formal}**")
}

/// Whether a handle name denotes one of the symbolic context handles.
pub fn is_symbolic(name: &str) -> bool {
    name.contains('*')
}

/// The analysis information recorded at one program point (just *before* the
/// recorded statement executes).
#[derive(Debug, Clone)]
pub struct ProgramPoint {
    /// `procedure:index` label, in execution order of the body walk.
    pub label: String,
    /// Pretty-printed statement the point precedes.
    pub statement: String,
    /// If the statement is a procedure call, the callee name.
    pub callee: Option<String>,
    /// The abstract state before the statement.
    pub state: AbstractState,
}

/// Per-procedure analysis results.
#[derive(Debug, Clone)]
pub struct ProcedureAnalysis {
    pub name: String,
    /// The entry context the body was analyzed under.
    pub entry: AbstractState,
    /// The state before every simple statement of the body, in walk order.
    pub points: Vec<ProgramPoint>,
    /// The state at procedure exit.
    pub exit: AbstractState,
    /// Structure warnings raised while analyzing the body.
    pub warnings: Vec<StructureWarning>,
}

impl ProcedureAnalysis {
    /// The state just before the `nth` (0-based) call to `callee`.
    pub fn state_before_call(&self, callee: &str, nth: usize) -> Option<&AbstractState> {
        self.points
            .iter()
            .filter(|p| p.callee.as_deref() == Some(callee))
            .nth(nth)
            .map(|p| &p.state)
    }

    /// The state just before the first statement whose rendering contains
    /// `text`.
    pub fn state_before(&self, text: &str) -> Option<&AbstractState> {
        self.points
            .iter()
            .find(|p| p.statement.contains(text))
            .map(|p| &p.state)
    }
}

/// Whole-program analysis results.
#[derive(Debug)]
pub struct AnalysisResult {
    procedures: HashMap<String, ProcedureAnalysis>,
    /// Argument-mode summaries.
    pub summaries: HashMap<String, ProcSummary>,
    /// Function-return summaries.
    pub return_summaries: HashMap<String, ReturnSummary>,
    /// All structure warnings, deduplicated.
    pub warnings: Vec<StructureWarning>,
    /// Number of whole-program rounds needed to stabilize.
    pub rounds: usize,
    /// Memoized [`AnalysisResult::digest`] — the result is immutable once
    /// assembled, and warm cache hits ask for the digest on every request.
    digest_memo: std::sync::OnceLock<u64>,
}

impl AnalysisResult {
    /// Reassemble a result from its parts — the inverse of taking one
    /// apart field by field.  Every field of every part is public, so a
    /// serialized result (the engine's durable store tier writes one per
    /// analyzed program) can be reconstructed exactly: a rebuilt result
    /// [`AnalysisResult::digest`]s identically to the original as long as
    /// the parts round-tripped faithfully.
    pub fn from_parts(
        procedures: HashMap<String, ProcedureAnalysis>,
        summaries: HashMap<String, ProcSummary>,
        return_summaries: HashMap<String, ReturnSummary>,
        warnings: Vec<StructureWarning>,
        rounds: usize,
    ) -> AnalysisResult {
        AnalysisResult {
            procedures,
            summaries,
            return_summaries,
            warnings,
            rounds,
            digest_memo: std::sync::OnceLock::new(),
        }
    }

    /// The per-procedure results.
    pub fn procedure(&self, name: &str) -> Option<&ProcedureAnalysis> {
        self.procedures.get(name)
    }

    /// Iterate over all analyzed procedures.
    pub fn procedures(&self) -> impl Iterator<Item = &ProcedureAnalysis> {
        self.procedures.values()
    }

    /// Whether the program never degrades the structure below TREE.
    pub fn preserves_tree(&self) -> bool {
        self.warnings.is_empty()
    }

    /// A stable content digest of the analysis result: per-procedure entry
    /// and exit states (matrix relations, structure, program points),
    /// warnings, argument-mode and return summaries.  Two runs over the same
    /// program produce the same digest, whatever thread interleaving or map
    /// iteration order produced them — the engine's batch tests and its
    /// warm-cache identity checks compare results through this.
    pub fn digest(&self) -> u64 {
        *self.digest_memo.get_or_init(|| self.compute_digest())
    }

    fn compute_digest(&self) -> u64 {
        let mut hasher = sil_lang::hash::StableHasher::new();
        hasher.write_str("sil-analysis-digest-v1");

        let mut names: Vec<&String> = self.procedures.keys().collect();
        names.sort();
        for name in names {
            let analysis = &self.procedures[name];
            hasher.write_str(name);
            hash_state(&mut hasher, &analysis.entry);
            hash_state(&mut hasher, &analysis.exit);
            hasher.write_usize(analysis.points.len());
            for point in &analysis.points {
                hasher.write_str(&point.label);
                hasher.write_str(&point.statement);
                hash_state(&mut hasher, &point.state);
            }
        }

        hasher.write_usize(self.warnings.len());
        for w in &self.warnings {
            hasher.write_str(&w.procedure);
            hasher.write_str(&w.statement);
            hasher.write_str(&w.kind.to_string());
        }

        let mut summary_names: Vec<&String> = self.summaries.keys().collect();
        summary_names.sort();
        for name in summary_names {
            let summary = &self.summaries[name];
            hasher.write_str(name);
            for (formal, mode) in &summary.handle_args {
                hasher.write_str(formal);
                hasher.write_str(&format!("{mode:?}"));
            }
        }

        let mut return_names: Vec<&String> = self.return_summaries.keys().collect();
        return_names.sort();
        for name in return_names {
            let ret = &self.return_summaries[name];
            hasher.write_str(name);
            hasher.write_u64(ret.fresh as u64);
            for (formal, to_ret, from_ret) in &ret.relations {
                hasher.write_str(formal);
                hasher.write_str(&to_ret.to_string());
                hasher.write_str(&from_ret.to_string());
            }
        }

        hasher.finish()
    }
}

fn hash_state(hasher: &mut sil_lang::hash::StableHasher, state: &AbstractState) {
    hasher.write_str(&state.structure.to_string());
    hasher.write_str(&state.matrix.render());
    for h in &state.attached {
        hasher.write_str(h);
    }
    for h in &state.shared {
        hasher.write_str(h);
    }
}

/// The entry state for a procedure that has not been called yet: its handle
/// parameters exist but are unrelated (used for `main` and as a fallback).
fn default_entry(sig: &ProcSignature) -> AbstractState {
    let handles: Vec<&str> = sig.handle_params();
    let mut state = AbstractState::with_handles(handles.iter().copied());
    for h in handles {
        state.mark_attached(h);
    }
    state
}

/// Build the callee entry-context contribution for one observed call site.
fn context_contribution(site: &CallSite, types: &ProgramTypes) -> AbstractState {
    let Some(callee_sig) = types.proc(&site.callee) else {
        return AbstractState::new();
    };
    let caller_state = &site.state_before;
    let mut ctx = AbstractState::new();
    ctx.structure = caller_state.structure;

    let formals: Vec<&str> = callee_sig.handle_params();
    // The actual variable bound to each formal at this site.
    let actual_of = |formal: &str| -> Option<&str> {
        site.handle_actuals
            .iter()
            .find(|(f, _)| f == formal)
            .map(|(_, a)| a.as_str())
    };

    for f in &formals {
        ctx.matrix.add_handle(f);
        ctx.matrix.add_handle(immediate_symbol(f));
        ctx.matrix.add_handle(stacked_symbol(f));
        ctx.mark_attached(&immediate_symbol(f));
        ctx.mark_attached(&stacked_symbol(f));
        if let Some(a) = actual_of(f) {
            if caller_state.is_attached(a) {
                ctx.mark_attached(f);
            }
            if caller_state.shared.contains(a) {
                ctx.shared.insert(f.to_string());
            }
        }
    }

    // Relations among the formals mirror the relations among the actuals.
    for fi in &formals {
        for fj in &formals {
            if fi == fj {
                continue;
            }
            if let (Some(ai), Some(aj)) = (actual_of(fi), actual_of(fj)) {
                let rel = caller_state.matrix.get(ai, aj);
                if !rel.is_empty() {
                    ctx.matrix.set(fi, fj, rel);
                }
            }
        }
    }

    // Relations between the formals and the rest of the caller's world fold
    // into the symbolic handles.
    let caller_handles: Vec<&'static str> = caller_state.matrix.handle_names().collect();
    for fi in &formals {
        let Some(ai) = actual_of(fi) else { continue };
        let sym_now = immediate_symbol(fi);
        let sym_stack = stacked_symbol(fi);
        for &x in &caller_handles {
            if x == ai || site.handle_actuals.iter().any(|(_, a)| a == x) {
                continue;
            }
            let target = if is_symbolic(x) { &sym_stack } else { &sym_now };
            // Only the "caller handle reaches the argument" direction is
            // folded in: it is what the callee needs to know (nodes above or
            // at its argument exist in the caller's world).  Folding the
            // downward direction would conflate *several* distinct caller
            // handles below the argument into one symbolic name and make the
            // analysis believe, e.g., that the left and right children are
            // both "the same" symbolic node (the paper's pB likewise has no
            // entries from `h` to `h*`).
            let into = caller_state.matrix.get(x, ai);
            if !into.is_empty() {
                let merged = ctx.matrix.get(target, fi).union(&into);
                ctx.matrix.set(target, fi, merged);
            }
        }
        // The immediate caller's handles may themselves be related to the
        // stacked ones in unknown ways.
        if !ctx.matrix.get(&sym_now, fi).is_empty() && !ctx.matrix.get(&sym_stack, fi).is_empty() {
            let merged = ctx
                .matrix
                .get(&sym_now, &sym_stack)
                .union(&crate::transfer::unknown_relation());
            ctx.matrix.set(&sym_now, &sym_stack, merged);
        }
    }
    ctx
}

/// Walk a statement, recording a [`ProgramPoint`] before every simple
/// statement, and return the state after it.
fn record_points(
    analyzer: &Analyzer<'_>,
    state: &AbstractState,
    stmt: &Stmt,
    sig: &ProcSignature,
    counter: &mut usize,
    points: &mut Vec<ProgramPoint>,
    warnings: &mut Vec<StructureWarning>,
) -> AbstractState {
    match stmt {
        Stmt::Block { stmts, .. } => {
            let mut current = state.clone();
            for s in stmts {
                current = record_points(analyzer, &current, s, sig, counter, points, warnings);
            }
            current
        }
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            let then_exit =
                record_points(analyzer, state, then_branch, sig, counter, points, warnings);
            let else_exit = match else_branch {
                Some(e) => record_points(analyzer, state, e, sig, counter, points, warnings),
                None => state.clone(),
            };
            then_exit.join(&else_exit)
        }
        Stmt::While { body, .. } => {
            // The transfer function computes the loop invariant; interior
            // points are recorded under that invariant.
            let invariant = analyzer.transfer(state, stmt, sig, warnings);
            let _ = record_points(analyzer, &invariant, body, sig, counter, points, warnings);
            invariant
        }
        Stmt::Par { arms, .. } => {
            let mut current = state.clone();
            for arm in arms {
                current = record_points(analyzer, &current, arm, sig, counter, points, warnings);
            }
            current
        }
        Stmt::Assign { .. } | Stmt::Call { .. } => {
            let callee = match stmt {
                Stmt::Call { proc, .. } => Some(proc.clone()),
                _ => None,
            };
            *counter += 1;
            points.push(ProgramPoint {
                label: format!("{}:{}", sig.name, counter),
                statement: pretty_stmt(stmt),
                callee,
                state: state.clone(),
            });
            analyzer.transfer(state, stmt, sig, warnings)
        }
    }
}

fn return_summary_from_exit(
    proc: &Procedure,
    sig: &ProcSignature,
    exit: &AbstractState,
) -> Option<ReturnSummary> {
    if sig.return_type != Some(Type::Handle) {
        return None;
    }
    let retvar = proc.return_var.as_deref()?;
    let mut relations = Vec::new();
    let mut any = false;
    for f in sig.handle_params() {
        let to_ret = exit.matrix.get(f, retvar);
        let from_ret = exit.matrix.get(retvar, f);
        if !to_ret.is_empty() || !from_ret.is_empty() {
            any = true;
        }
        relations.push((f.to_string(), to_ret, from_ret));
    }
    // Fresh if unrelated to every formal and every symbolic context handle.
    let unrelated_to_symbolics = exit
        .matrix
        .handle_names()
        .filter(|h| is_symbolic(h))
        .all(|h| exit.matrix.unrelated(h, retvar));
    Some(ReturnSummary {
        fresh: !any && unrelated_to_symbolics,
        relations,
    })
}

/// One memoized body walk: the output of analyzing one procedure body under
/// one exact set of inputs, addressed by a stable key over those inputs
/// (own cone fingerprint, entry state, and the direct callees' function
/// return summaries and exit structures).
///
/// Replaying a record is observationally identical to re-walking the body:
/// the walk is a deterministic pure function of exactly the keyed inputs.
/// This is what makes incremental re-analysis *exact* — the incremental
/// driver runs the same fixpoint and serves unchanged walks from records, so
/// its result digests equal a from-scratch analysis by construction.
#[derive(Debug)]
pub struct WalkRecord {
    /// The memoization key (see `walk_key`).
    pub key: u64,
    /// Cone fingerprint of the procedure when the walk was recorded; groups
    /// records for the engine's cone-keyed procedure cache.
    pub cone: u64,
    /// The walked procedure.
    pub procedure: String,
    points: Vec<ProgramPoint>,
    exit: AbstractState,
    warnings: Vec<StructureWarning>,
    call_sites: Vec<CallSite>,
}

/// Every body walk recorded during one analysis run — the seed for
/// incrementally re-analyzing an edited variant of the program.
#[derive(Debug, Clone, Default)]
pub struct AnalysisSnapshot {
    walks: HashMap<u64, Arc<WalkRecord>>,
}

impl AnalysisSnapshot {
    pub fn new() -> AnalysisSnapshot {
        AnalysisSnapshot::default()
    }

    pub fn len(&self) -> usize {
        self.walks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.walks.is_empty()
    }

    /// Add a record (last insertion wins on key collision).
    pub fn insert(&mut self, record: Arc<WalkRecord>) {
        self.walks.insert(record.key, record);
    }

    pub fn get(&self, key: u64) -> Option<&Arc<WalkRecord>> {
        self.walks.get(&key)
    }

    /// Iterate over all records (no particular order).
    pub fn records(&self) -> impl Iterator<Item = &Arc<WalkRecord>> {
        self.walks.values()
    }
}

/// Reuse counters of one (incremental) analysis run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Body walks actually performed (fixpoint work paid).
    pub walks_performed: usize,
    /// Body walks replayed from snapshot records.
    pub walks_reused: usize,
    /// Procedures whose cone fingerprint had retained state available
    /// (filled in by the engine, which owns the cone-keyed cache).
    pub procedures_reused: usize,
    /// Procedures analyzed with no retained state (edited, or in the
    /// dependent cone of an edit, or simply never seen before).
    pub procedures_stale: usize,
}

/// Knobs of the full-control analysis entry point.
#[derive(Debug, Default)]
pub struct AnalyzeOptions<'s> {
    /// Schedule independent same-level call-graph SCCs across rayon within
    /// each fixpoint round.
    pub parallel: bool,
    /// Record every body walk and return an [`AnalysisSnapshot`].
    pub record: bool,
    /// Replay body walks whose keys match records of this snapshot.
    pub reuse: Option<&'s AnalysisSnapshot>,
}

/// Analyze a whole (normalized, type-checked) program.
pub fn analyze_program(program: &Program, types: &ProgramTypes) -> AnalysisResult {
    analyze_program_with_summaries(program, types, compute_summaries(program, types))
}

/// Analyze a program with precomputed argument-mode summaries.
///
/// This is the summary-reuse hook for the memoizing engine: summaries are
/// pure functions of each procedure's call-graph cone (see
/// [`crate::callgraph::CallGraph::cone_fingerprints`]), so a cache can
/// supply them and skip [`crate::summary::compute_summaries`] entirely.
/// With identical summaries the result is identical to [`analyze_program`].
pub fn analyze_program_with_summaries(
    program: &Program,
    types: &ProgramTypes,
    summaries: HashMap<String, ProcSummary>,
) -> AnalysisResult {
    let options = AnalyzeOptions {
        parallel: true,
        ..AnalyzeOptions::default()
    };
    analyze_program_with_options(program, types, summaries, &options).0
}

/// Analyze a program and record every body walk, so a later edited variant
/// can be analyzed incrementally against the returned snapshot.
pub fn analyze_program_recording(
    program: &Program,
    types: &ProgramTypes,
    summaries: HashMap<String, ProcSummary>,
) -> (AnalysisResult, AnalysisSnapshot, IncrementalStats) {
    let options = AnalyzeOptions {
        parallel: true,
        record: true,
        reuse: None,
    };
    let (result, snapshot, stats) =
        analyze_program_with_options(program, types, summaries, &options);
    (result, snapshot.expect("recording was requested"), stats)
}

/// Incrementally analyze a program against the walk records of a previous
/// run (of this program, an earlier version of it, or any program sharing
/// procedures with it).
///
/// The interprocedural fixpoint is re-run in full, but every body walk whose
/// exact inputs match a retained record is served from the record instead of
/// being recomputed — so only the *stale cone* of an edit (the procedures
/// whose own text, entry context, or callee summaries actually changed) pays
/// for re-analysis, and the result is bit-identical (`AnalysisResult::digest`)
/// to a from-scratch [`analyze_program`].
///
/// `summaries` must be the cone-pure argument-mode summaries of `program`
/// (what [`compute_summaries`] returns, possibly served from a cache).
pub fn analyze_program_incremental(
    program: &Program,
    types: &ProgramTypes,
    summaries: HashMap<String, ProcSummary>,
    snapshot: &AnalysisSnapshot,
) -> (AnalysisResult, AnalysisSnapshot, IncrementalStats) {
    let options = AnalyzeOptions {
        parallel: true,
        record: true,
        reuse: Some(snapshot),
    };
    let (result, recorded, stats) =
        analyze_program_with_options(program, types, summaries, &options);
    (result, recorded.expect("recording was requested"), stats)
}

/// The memoization key of one body walk: a stable hash over everything the
/// walk reads — the procedure's cone fingerprint (own canonical text plus
/// every transitive callee's, which also pins the argument-mode summaries
/// the walk consults), the entry state, and the current function-return
/// summary and exit structure of every direct callee.
fn walk_key(
    cone: u64,
    name: &str,
    entry: &AbstractState,
    callees: &[&str],
    return_summaries: &HashMap<String, ReturnSummary>,
    exit_structures: &HashMap<String, StructureKind>,
) -> u64 {
    let mut hasher = StableHasher::new();
    hasher.write_str("sil-walk-v1");
    hasher.write_u64(cone);
    hasher.write_str(name);
    hash_state(&mut hasher, entry);
    for callee in callees {
        hasher.write_str(callee);
        match return_summaries.get(*callee) {
            Some(summary) => {
                hasher.write_u64(1);
                hasher.write_u64(summary.digest());
            }
            None => {
                hasher.write_u64(0);
            }
        }
        match exit_structures.get(*callee) {
            Some(kind) => {
                hasher.write_u64(1);
                hasher.write_str(&kind.to_string());
            }
            None => {
                hasher.write_u64(0);
            }
        }
    }
    hasher.finish()
}

/// The result of one scheduled body walk (fresh or replayed).
struct WalkOutcome {
    name: String,
    entry: AbstractState,
    record: Arc<WalkRecord>,
    reused: bool,
}

/// Walk every contexted member of one call-graph SCC under the round's
/// current tables.  Runs on a rayon thread when the level has several
/// independent SCCs; all inputs are read-only, all effects are returned.
#[allow(clippy::too_many_arguments)]
fn walk_scc(
    program: &Program,
    types: &ProgramTypes,
    graph: &CallGraph,
    cones: &HashMap<String, u64>,
    members: &[String],
    contexts: &HashMap<String, AbstractState>,
    summaries: &HashMap<String, ProcSummary>,
    return_summaries: &HashMap<String, ReturnSummary>,
    exit_structures: &HashMap<String, StructureKind>,
    reuse: Option<&AnalysisSnapshot>,
) -> Vec<WalkOutcome> {
    let mut outcomes = Vec::new();
    // One analyzer per component walk, seeded with the round's view of the
    // dynamic tables; built lazily so fully-replayed components never pay
    // for the table clones.  A walk only ever consults the entries of the
    // component's members and their direct callees, so only that slice of
    // each table is cloned into the task's analyzer.
    let mut relevant: std::collections::BTreeSet<&str> =
        members.iter().map(|m| m.as_str()).collect();
    for member in members {
        relevant.extend(graph.callees_of(member));
    }
    fn table_slice<V: Clone>(
        table: &HashMap<String, V>,
        relevant: &std::collections::BTreeSet<&str>,
    ) -> HashMap<String, V> {
        table
            .iter()
            .filter(|(name, _)| relevant.contains(name.as_str()))
            .map(|(name, value)| (name.clone(), value.clone()))
            .collect()
    }
    let mut analyzer: Option<Analyzer<'_>> = None;
    for name in members {
        let Some(proc) = program.procedure(name) else {
            continue;
        };
        let Some(sig) = types.proc(name) else {
            continue;
        };
        let Some(entry) = contexts.get(name).cloned() else {
            continue;
        };
        let cone = cones.get(name).copied().unwrap_or_default();
        let mut callees = graph.callees_of(name);
        callees.sort_unstable();
        let key = walk_key(
            cone,
            name,
            &entry,
            &callees,
            return_summaries,
            exit_structures,
        );
        if let Some(hit) = reuse.and_then(|s| s.get(key)) {
            outcomes.push(WalkOutcome {
                name: name.clone(),
                entry,
                record: hit.clone(),
                reused: true,
            });
            continue;
        }
        let analyzer = analyzer.get_or_insert_with(|| {
            Analyzer::with_tables(
                program,
                types,
                table_slice(summaries, &relevant),
                table_slice(return_summaries, &relevant),
                table_slice(exit_structures, &relevant),
            )
        });
        let mut warnings = Vec::new();
        let mut points = Vec::new();
        let mut counter = 0usize;
        let exit = record_points(
            analyzer,
            &entry,
            &proc.body,
            sig,
            &mut counter,
            &mut points,
            &mut warnings,
        );
        let call_sites = analyzer.take_call_sites();
        outcomes.push(WalkOutcome {
            name: name.clone(),
            entry,
            record: Arc::new(WalkRecord {
                key,
                cone,
                procedure: name.clone(),
                points,
                exit,
                warnings,
                call_sites,
            }),
            reused: false,
        });
    }
    outcomes
}

/// The interprocedural driver.
///
/// Rounds iterate the call-graph levels *callers-first* (entry contexts flow
/// down the call graph, so one round pushes a context change all the way to
/// the leaves); within one level every SCC is independent and is walked on
/// its own rayon task when `options.parallel` is set.  All effects (context
/// contributions, return summaries, exit structures) are merged sequentially
/// in schedule order, so the result is deterministic whatever thread
/// interleaving produced the walks.
pub fn analyze_program_with_options(
    program: &Program,
    types: &ProgramTypes,
    summaries: HashMap<String, ProcSummary>,
    options: &AnalyzeOptions<'_>,
) -> (AnalysisResult, Option<AnalysisSnapshot>, IncrementalStats) {
    let graph = CallGraph::of_program(program);
    let cones = graph.cone_fingerprints(program);
    let levels = graph.scc_levels();

    let mut contexts: HashMap<String, AbstractState> = HashMap::new();
    if let Some(main_sig) = types.proc("main") {
        contexts.insert("main".to_string(), default_entry(main_sig));
    }
    let mut procedures: HashMap<String, ProcedureAnalysis> = HashMap::new();
    let mut return_summaries: HashMap<String, ReturnSummary> = HashMap::new();
    let mut exit_structures: HashMap<String, StructureKind> = HashMap::new();
    let mut recorded = options.record.then(AnalysisSnapshot::new);
    let mut stats = IncrementalStats::default();
    let mut rounds = 0;

    for round in 0..MAX_ROUNDS {
        rounds = round + 1;
        let mut changed = false;
        for level in levels.iter().rev() {
            let active: Vec<&Vec<String>> = level
                .iter()
                .filter(|scc| scc.iter().any(|m| contexts.contains_key(m)))
                .collect();
            if active.is_empty() {
                continue;
            }
            let walk = |scc: &&Vec<String>| {
                walk_scc(
                    program,
                    types,
                    &graph,
                    &cones,
                    scc,
                    &contexts,
                    &summaries,
                    &return_summaries,
                    &exit_structures,
                    options.reuse,
                )
            };
            let outcomes: Vec<Vec<WalkOutcome>> = if options.parallel && active.len() > 1 {
                active.par_iter().map(walk).collect()
            } else {
                active.iter().map(walk).collect()
            };

            for outcome in outcomes.into_iter().flatten() {
                let WalkOutcome {
                    name,
                    entry,
                    record,
                    reused,
                } = outcome;
                if reused {
                    stats.walks_reused += 1;
                } else {
                    stats.walks_performed += 1;
                }

                // Propagate call-site contributions into callee contexts.
                for site in &record.call_sites {
                    let contribution = context_contribution(site, types);
                    let updated = match contexts.get(&site.callee) {
                        Some(existing) => existing.join(&contribution),
                        None => contribution,
                    };
                    let is_new = !contexts.contains_key(&site.callee);
                    if is_new || !contexts[&site.callee].same_as(&updated) {
                        contexts.insert(site.callee.clone(), updated);
                        changed = true;
                    }
                }

                let proc = program.procedure(&name).expect("walked procedures exist");
                let sig = types.proc(&name).expect("walked procedures are typed");

                // Function-return summaries feed the next round.
                if let Some(summary) = return_summary_from_exit(proc, sig, &record.exit) {
                    if return_summaries.get(&name) != Some(&summary) {
                        return_summaries.insert(name.clone(), summary);
                        changed = true;
                    }
                }

                // The structural classification at exit feeds the caller-side
                // call transfer in the next round.
                if exit_structures.get(&name) != Some(&record.exit.structure) {
                    exit_structures.insert(name.clone(), record.exit.structure);
                    changed = true;
                }

                procedures.insert(
                    name.clone(),
                    ProcedureAnalysis {
                        name: name.clone(),
                        entry,
                        points: record.points.clone(),
                        exit: record.exit.clone(),
                        warnings: record.warnings.clone(),
                    },
                );
                if let Some(snapshot) = recorded.as_mut() {
                    snapshot.insert(record);
                }
            }
        }
        if !changed {
            break;
        }
    }

    let mut warnings: Vec<StructureWarning> = Vec::new();
    for analysis in procedures.values() {
        for w in &analysis.warnings {
            if !warnings.contains(w) {
                warnings.push(w.clone());
            }
        }
    }
    warnings.sort_by(|a, b| {
        (a.procedure.clone(), a.statement.clone()).cmp(&(b.procedure.clone(), b.statement.clone()))
    });

    (
        AnalysisResult {
            procedures,
            summaries,
            return_summaries,
            warnings,
            rounds,
            digest_memo: std::sync::OnceLock::new(),
        },
        recorded,
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sil_lang::frontend;

    fn analyze(src: &str) -> (AnalysisResult, sil_lang::Program, ProgramTypes) {
        let (program, types) = frontend(src).unwrap();
        let result = analyze_program(&program, &types);
        (result, program, types)
    }

    #[test]
    fn figure_7_point_a_matrix() {
        let (result, _, _) = analyze(sil_lang::testsrc::ADD_AND_REVERSE);
        let main = result.procedure("main").unwrap();
        let point_a = main.state_before_call("add_n", 0).unwrap();
        // pA of Figure 7: root → lside = L1, root → rside = R1, lside and
        // rside unrelated.
        assert_eq!(point_a.matrix.get("root", "lside").to_string(), "L1");
        assert_eq!(point_a.matrix.get("root", "rside").to_string(), "R1");
        assert!(point_a.matrix.unrelated("lside", "rside"));
        assert!(point_a.structure.is_tree());
    }

    #[test]
    fn figure_7_point_b_matrix() {
        let (result, _, _) = analyze(sil_lang::testsrc::ADD_AND_REVERSE);
        let add_n = result.procedure("add_n").expect("add_n was analyzed");
        let point_b = add_n.state_before_call("add_n", 0).unwrap();
        // pB of Figure 7: h → l = L1, h → r = R1, l and r unrelated — the
        // recursive calls may execute in parallel.
        assert_eq!(point_b.matrix.get("h", "l").to_string(), "L1");
        assert_eq!(point_b.matrix.get("h", "r").to_string(), "R1");
        assert!(point_b.matrix.unrelated("l", "r"));
        // The symbolic caller handles are present and sit above h.
        let sym = immediate_symbol("h");
        assert!(point_b.matrix.contains(&sym));
        assert!(
            !point_b.matrix.get(&sym, "h").is_empty(),
            "h* should be related (above) h:\n{}",
            point_b.matrix.render()
        );
        assert!(point_b.matrix.get("h", &sym).is_empty());
    }

    #[test]
    fn figure_7_point_c_matrix() {
        let (result, _, _) = analyze(sil_lang::testsrc::ADD_AND_REVERSE);
        let reverse = result.procedure("reverse").expect("reverse was analyzed");
        let point_c = reverse.state_before_call("reverse", 0).unwrap();
        assert!(point_c.matrix.unrelated("l", "r"));
        assert_eq!(point_c.matrix.get("h", "l").to_string(), "L1");
    }

    #[test]
    fn add_and_reverse_preserves_tree() {
        let (result, _, _) = analyze(sil_lang::testsrc::ADD_AND_REVERSE);
        // The temporary DAG inside reverse's swap is reported as a warning…
        let reverse = result.procedure("reverse").unwrap();
        assert_eq!(reverse.exit.structure, crate::state::StructureKind::Tree);
        // …but the structure is a TREE again at procedure exit, and main
        // finishes with a TREE.
        let main = result.procedure("main").unwrap();
        assert!(main.exit.structure.is_tree());
        assert!(result.rounds <= MAX_ROUNDS);
    }

    #[test]
    fn build_function_returns_fresh_tree() {
        let (result, _, _) = analyze(sil_lang::testsrc::ADD_AND_REVERSE);
        let build = result
            .return_summaries
            .get("build")
            .expect("summary for build");
        assert!(build.fresh);
        // and in main, root is unrelated to the loop counter handles
        let main = result.procedure("main").unwrap();
        let point = main.state_before("lside := root.left").unwrap();
        assert!(point.matrix.contains("root"));
    }

    #[test]
    fn cycle_creation_is_reported() {
        let src = r#"
program bad
procedure main()
  t, d: handle
begin
  t := new();
  d := new();
  t.left := d;
  d.left := t
end
"#;
        let (result, _, _) = analyze(src);
        assert!(!result.preserves_tree());
        assert!(result
            .warnings
            .iter()
            .any(|w| w.kind == crate::state::StructureKind::PossiblyCyclic));
        let main = result.procedure("main").unwrap();
        assert_eq!(
            main.exit.structure,
            crate::state::StructureKind::PossiblyCyclic
        );
    }

    #[test]
    fn dag_creation_is_reported() {
        let src = r#"
program shares
procedure main()
  t, u, a: handle
begin
  t := new();
  u := new();
  a := new();
  t.left := a;
  u.left := a
end
"#;
        let (result, _, _) = analyze(src);
        assert!(result
            .warnings
            .iter()
            .any(|w| w.kind == crate::state::StructureKind::PossiblyDag));
        let main = result.procedure("main").unwrap();
        assert_eq!(
            main.exit.structure,
            crate::state::StructureKind::PossiblyDag
        );
    }

    #[test]
    fn recursive_context_stabilizes() {
        let (result, _, _) = analyze(sil_lang::testsrc::ADD_AND_REVERSE);
        assert!(
            result.rounds < MAX_ROUNDS,
            "analysis did not converge early enough ({} rounds)",
            result.rounds
        );
        // every reachable procedure got analyzed
        for name in ["main", "add_n", "reverse", "build"] {
            assert!(result.procedure(name).is_some(), "{name} missing");
        }
    }

    #[test]
    fn leftmost_loop_analysis() {
        let (result, _, _) = analyze(sil_lang::testsrc::LEFTMOST_LOOP);
        let main = result.procedure("main").unwrap();
        // after the loop (exit state) l is somewhere on the left spine of h
        let hl = main.exit.matrix.get("h", "l");
        assert!(!hl.is_empty());
        assert!(hl
            .iter()
            .all(|p| p.links().iter().all(|l| l.dir == sil_pathmatrix::Dir::Left)));
        assert!(main.exit.structure.is_tree());
    }

    #[test]
    fn unreachable_procedures_are_not_analyzed() {
        let src = r#"
program p
procedure never(t: handle)
begin
  t.left := t
end
procedure main()
  x: handle
begin
  x := new()
end
"#;
        let (result, _, _) = analyze(src);
        assert!(result.procedure("never").is_none());
        assert!(result.preserves_tree(), "dead code raises no warnings");
    }

    #[test]
    fn recording_then_replaying_is_exact() {
        let (program, types) = frontend(sil_lang::testsrc::ADD_AND_REVERSE).unwrap();
        let summaries = compute_summaries(&program, &types);
        let (full, snapshot, stats) =
            analyze_program_recording(&program, &types, summaries.clone());
        assert!(stats.walks_performed > 0);
        assert_eq!(stats.walks_reused, 0);
        assert!(!snapshot.is_empty());

        // Re-analyzing the identical program replays every walk.
        let (replayed, _, replay_stats) =
            analyze_program_incremental(&program, &types, summaries, &snapshot);
        assert_eq!(full.digest(), replayed.digest());
        assert_eq!(replay_stats.walks_performed, 0);
        assert_eq!(replay_stats.walks_reused, stats.walks_performed);
    }

    #[test]
    fn incremental_edit_matches_scratch_and_reuses_clean_walks() {
        let base_src = sil_lang::testsrc::ADD_AND_REVERSE;
        let (base, base_types) = frontend(base_src).unwrap();
        let base_summaries = compute_summaries(&base, &base_types);
        let (_, snapshot, full_stats) =
            analyze_program_recording(&base, &base_types, base_summaries);

        // A scalar edit confined to main: every other procedure's cone,
        // entry context and callee tables are unchanged.
        let edited_src = base_src.replace("i := 4", "i := 5");
        assert_ne!(edited_src, base_src);
        let (edited, types) = frontend(&edited_src).unwrap();
        let summaries = compute_summaries(&edited, &types);
        let (incremental, _, stats) =
            analyze_program_incremental(&edited, &types, summaries, &snapshot);

        let scratch = analyze_program(&edited, &types);
        assert_eq!(incremental.digest(), scratch.digest());
        assert!(
            stats.walks_reused > 0,
            "clean procedures must replay: {stats:?}"
        );
        assert!(
            stats.walks_performed < full_stats.walks_performed,
            "only the stale cone may be re-walked: {stats:?} vs {full_stats:?}"
        );
    }

    #[test]
    fn incremental_semantic_edit_still_matches_scratch() {
        let base_src = sil_lang::testsrc::ADD_AND_REVERSE;
        let (base, base_types) = frontend(base_src).unwrap();
        let summaries = compute_summaries(&base, &base_types);
        let (_, snapshot, _) = analyze_program_recording(&base, &base_types, summaries);

        // A structural edit inside `reverse`: its cone and every cone above
        // it go stale; digests must still match a from-scratch run.
        let edited_src = base_src.replace("h.left := r", "h.left := nil");
        assert_ne!(edited_src, base_src);
        let (edited, types) = frontend(&edited_src).unwrap();
        let edited_summaries = compute_summaries(&edited, &types);
        let (incremental, _, _) =
            analyze_program_incremental(&edited, &types, edited_summaries, &snapshot);
        assert_eq!(
            incremental.digest(),
            analyze_program(&edited, &types).digest()
        );
    }

    #[test]
    fn sequential_and_parallel_fixpoints_agree() {
        for parallel in [false, true] {
            let (program, types) = frontend(sil_lang::testsrc::ADD_AND_REVERSE).unwrap();
            let summaries = compute_summaries(&program, &types);
            let options = AnalyzeOptions {
                parallel,
                ..AnalyzeOptions::default()
            };
            let (result, _, _) =
                analyze_program_with_options(&program, &types, summaries, &options);
            assert_eq!(
                result.digest(),
                analyze_program(&program, &types).digest(),
                "parallel={parallel}"
            );
        }
    }

    #[test]
    fn points_have_stable_labels() {
        let (result, _, _) = analyze(sil_lang::testsrc::ADD_AND_REVERSE);
        let main = result.procedure("main").unwrap();
        assert!(main.points.iter().all(|p| p.label.starts_with("main:")));
        assert!(main.points.len() >= 6);
        // the first point is before `i := 4`
        assert!(main.points[0].statement.contains("i := 4"));
    }
}
