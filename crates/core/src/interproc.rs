//! The interprocedural analysis and whole-program driver.
//!
//! Each procedure is analyzed under an *entry context*: a path matrix over
//! its handle formals plus the symbolic handles `f*` (relations contributed
//! by the immediate caller's handles) and `f**` (relations contributed by all
//! stacked invocations — the paper's `h*` / `h**` of Figure 7).  Every call
//! site folds the caller's current relationships into the callee's context;
//! recursive calls fold the current formals into `f*` and the previous
//! symbolic handles into `f**`.  The whole program is re-analyzed until all
//! contexts (and function-return summaries) stabilize.

use crate::state::{AbstractState, StructureWarning};
use crate::summary::{ProcSummary, ReturnSummary};
use crate::transfer::{Analyzer, CallSite};
use sil_lang::ast::*;
use sil_lang::pretty::pretty_stmt;
use sil_lang::types::{ProcSignature, ProgramTypes, Type};
use std::collections::HashMap;

/// Maximum number of whole-program rounds before declaring convergence
/// failure (the widened path domain converges in a handful of rounds).
pub const MAX_ROUNDS: usize = 16;

/// The symbolic handle collecting the immediate caller's relations to a
/// formal.
pub fn immediate_symbol(formal: &str) -> String {
    format!("{formal}*")
}

/// The symbolic handle collecting relations from all stacked invocations.
pub fn stacked_symbol(formal: &str) -> String {
    format!("{formal}**")
}

/// Whether a handle name denotes one of the symbolic context handles.
pub fn is_symbolic(name: &str) -> bool {
    name.contains('*')
}

/// The analysis information recorded at one program point (just *before* the
/// recorded statement executes).
#[derive(Debug, Clone)]
pub struct ProgramPoint {
    /// `procedure:index` label, in execution order of the body walk.
    pub label: String,
    /// Pretty-printed statement the point precedes.
    pub statement: String,
    /// If the statement is a procedure call, the callee name.
    pub callee: Option<String>,
    /// The abstract state before the statement.
    pub state: AbstractState,
}

/// Per-procedure analysis results.
#[derive(Debug, Clone)]
pub struct ProcedureAnalysis {
    pub name: String,
    /// The entry context the body was analyzed under.
    pub entry: AbstractState,
    /// The state before every simple statement of the body, in walk order.
    pub points: Vec<ProgramPoint>,
    /// The state at procedure exit.
    pub exit: AbstractState,
    /// Structure warnings raised while analyzing the body.
    pub warnings: Vec<StructureWarning>,
}

impl ProcedureAnalysis {
    /// The state just before the `nth` (0-based) call to `callee`.
    pub fn state_before_call(&self, callee: &str, nth: usize) -> Option<&AbstractState> {
        self.points
            .iter()
            .filter(|p| p.callee.as_deref() == Some(callee))
            .nth(nth)
            .map(|p| &p.state)
    }

    /// The state just before the first statement whose rendering contains
    /// `text`.
    pub fn state_before(&self, text: &str) -> Option<&AbstractState> {
        self.points
            .iter()
            .find(|p| p.statement.contains(text))
            .map(|p| &p.state)
    }
}

/// Whole-program analysis results.
#[derive(Debug)]
pub struct AnalysisResult {
    procedures: HashMap<String, ProcedureAnalysis>,
    /// Argument-mode summaries.
    pub summaries: HashMap<String, ProcSummary>,
    /// Function-return summaries.
    pub return_summaries: HashMap<String, ReturnSummary>,
    /// All structure warnings, deduplicated.
    pub warnings: Vec<StructureWarning>,
    /// Number of whole-program rounds needed to stabilize.
    pub rounds: usize,
}

impl AnalysisResult {
    /// The per-procedure results.
    pub fn procedure(&self, name: &str) -> Option<&ProcedureAnalysis> {
        self.procedures.get(name)
    }

    /// Iterate over all analyzed procedures.
    pub fn procedures(&self) -> impl Iterator<Item = &ProcedureAnalysis> {
        self.procedures.values()
    }

    /// Whether the program never degrades the structure below TREE.
    pub fn preserves_tree(&self) -> bool {
        self.warnings.is_empty()
    }

    /// A stable content digest of the analysis result: per-procedure entry
    /// and exit states (matrix relations, structure, program points),
    /// warnings, argument-mode and return summaries.  Two runs over the same
    /// program produce the same digest, whatever thread interleaving or map
    /// iteration order produced them — the engine's batch tests and its
    /// warm-cache identity checks compare results through this.
    pub fn digest(&self) -> u64 {
        let mut hasher = sil_lang::hash::StableHasher::new();
        hasher.write_str("sil-analysis-digest-v1");

        let mut names: Vec<&String> = self.procedures.keys().collect();
        names.sort();
        for name in names {
            let analysis = &self.procedures[name];
            hasher.write_str(name);
            hash_state(&mut hasher, &analysis.entry);
            hash_state(&mut hasher, &analysis.exit);
            hasher.write_usize(analysis.points.len());
            for point in &analysis.points {
                hasher.write_str(&point.label);
                hasher.write_str(&point.statement);
                hash_state(&mut hasher, &point.state);
            }
        }

        hasher.write_usize(self.warnings.len());
        for w in &self.warnings {
            hasher.write_str(&w.procedure);
            hasher.write_str(&w.statement);
            hasher.write_str(&w.kind.to_string());
        }

        let mut summary_names: Vec<&String> = self.summaries.keys().collect();
        summary_names.sort();
        for name in summary_names {
            let summary = &self.summaries[name];
            hasher.write_str(name);
            for (formal, mode) in &summary.handle_args {
                hasher.write_str(formal);
                hasher.write_str(&format!("{mode:?}"));
            }
        }

        let mut return_names: Vec<&String> = self.return_summaries.keys().collect();
        return_names.sort();
        for name in return_names {
            let ret = &self.return_summaries[name];
            hasher.write_str(name);
            hasher.write_u64(ret.fresh as u64);
            for (formal, to_ret, from_ret) in &ret.relations {
                hasher.write_str(formal);
                hasher.write_str(&to_ret.to_string());
                hasher.write_str(&from_ret.to_string());
            }
        }

        hasher.finish()
    }
}

fn hash_state(hasher: &mut sil_lang::hash::StableHasher, state: &AbstractState) {
    hasher.write_str(&state.structure.to_string());
    hasher.write_str(&state.matrix.render());
    for h in &state.attached {
        hasher.write_str(h);
    }
    for h in &state.shared {
        hasher.write_str(h);
    }
}

/// The entry state for a procedure that has not been called yet: its handle
/// parameters exist but are unrelated (used for `main` and as a fallback).
fn default_entry(sig: &ProcSignature) -> AbstractState {
    let handles: Vec<&str> = sig.handle_params();
    let mut state = AbstractState::with_handles(handles.iter().copied());
    for h in handles {
        state.mark_attached(h);
    }
    state
}

/// Build the callee entry-context contribution for one observed call site.
fn context_contribution(site: &CallSite, types: &ProgramTypes) -> AbstractState {
    let Some(callee_sig) = types.proc(&site.callee) else {
        return AbstractState::new();
    };
    let caller_state = &site.state_before;
    let mut ctx = AbstractState::new();
    ctx.structure = caller_state.structure;

    let formals: Vec<&str> = callee_sig.handle_params();
    // The actual variable bound to each formal at this site.
    let actual_of = |formal: &str| -> Option<&str> {
        site.handle_actuals
            .iter()
            .find(|(f, _)| f == formal)
            .map(|(_, a)| a.as_str())
    };

    for f in &formals {
        ctx.matrix.add_handle(f.to_string());
        ctx.matrix.add_handle(immediate_symbol(f));
        ctx.matrix.add_handle(stacked_symbol(f));
        ctx.mark_attached(&immediate_symbol(f));
        ctx.mark_attached(&stacked_symbol(f));
        if let Some(a) = actual_of(f) {
            if caller_state.is_attached(a) {
                ctx.mark_attached(f);
            }
            if caller_state.shared.contains(a) {
                ctx.shared.insert(f.to_string());
            }
        }
    }

    // Relations among the formals mirror the relations among the actuals.
    for fi in &formals {
        for fj in &formals {
            if fi == fj {
                continue;
            }
            if let (Some(ai), Some(aj)) = (actual_of(fi), actual_of(fj)) {
                let rel = caller_state.matrix.get(ai, aj);
                if !rel.is_empty() {
                    ctx.matrix.set(fi, fj, rel);
                }
            }
        }
    }

    // Relations between the formals and the rest of the caller's world fold
    // into the symbolic handles.
    let caller_handles: Vec<String> = caller_state.matrix.handles().to_vec();
    for fi in &formals {
        let Some(ai) = actual_of(fi) else { continue };
        let sym_now = immediate_symbol(fi);
        let sym_stack = stacked_symbol(fi);
        for x in &caller_handles {
            if x == ai || site.handle_actuals.iter().any(|(_, a)| a == x) {
                continue;
            }
            let target = if is_symbolic(x) { &sym_stack } else { &sym_now };
            // Only the "caller handle reaches the argument" direction is
            // folded in: it is what the callee needs to know (nodes above or
            // at its argument exist in the caller's world).  Folding the
            // downward direction would conflate *several* distinct caller
            // handles below the argument into one symbolic name and make the
            // analysis believe, e.g., that the left and right children are
            // both "the same" symbolic node (the paper's pB likewise has no
            // entries from `h` to `h*`).
            let into = caller_state.matrix.get(x, ai);
            if !into.is_empty() {
                let merged = ctx.matrix.get(target, fi).union(&into);
                ctx.matrix.set(target, fi, merged);
            }
        }
        // The immediate caller's handles may themselves be related to the
        // stacked ones in unknown ways.
        if !ctx.matrix.get(&sym_now, fi).is_empty() && !ctx.matrix.get(&sym_stack, fi).is_empty() {
            let merged = ctx
                .matrix
                .get(&sym_now, &sym_stack)
                .union(&crate::transfer::unknown_relation());
            ctx.matrix.set(&sym_now, &sym_stack, merged);
        }
    }
    ctx
}

/// Walk a statement, recording a [`ProgramPoint`] before every simple
/// statement, and return the state after it.
fn record_points(
    analyzer: &Analyzer<'_>,
    state: &AbstractState,
    stmt: &Stmt,
    sig: &ProcSignature,
    counter: &mut usize,
    points: &mut Vec<ProgramPoint>,
    warnings: &mut Vec<StructureWarning>,
) -> AbstractState {
    match stmt {
        Stmt::Block { stmts, .. } => {
            let mut current = state.clone();
            for s in stmts {
                current = record_points(analyzer, &current, s, sig, counter, points, warnings);
            }
            current
        }
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            let then_exit =
                record_points(analyzer, state, then_branch, sig, counter, points, warnings);
            let else_exit = match else_branch {
                Some(e) => record_points(analyzer, state, e, sig, counter, points, warnings),
                None => state.clone(),
            };
            then_exit.join(&else_exit)
        }
        Stmt::While { body, .. } => {
            // The transfer function computes the loop invariant; interior
            // points are recorded under that invariant.
            let invariant = analyzer.transfer(state, stmt, sig, warnings);
            let _ = record_points(analyzer, &invariant, body, sig, counter, points, warnings);
            invariant
        }
        Stmt::Par { arms, .. } => {
            let mut current = state.clone();
            for arm in arms {
                current = record_points(analyzer, &current, arm, sig, counter, points, warnings);
            }
            current
        }
        Stmt::Assign { .. } | Stmt::Call { .. } => {
            let callee = match stmt {
                Stmt::Call { proc, .. } => Some(proc.clone()),
                _ => None,
            };
            *counter += 1;
            points.push(ProgramPoint {
                label: format!("{}:{}", sig.name, counter),
                statement: pretty_stmt(stmt),
                callee,
                state: state.clone(),
            });
            analyzer.transfer(state, stmt, sig, warnings)
        }
    }
}

fn return_summary_from_exit(
    proc: &Procedure,
    sig: &ProcSignature,
    exit: &AbstractState,
) -> Option<ReturnSummary> {
    if sig.return_type != Some(Type::Handle) {
        return None;
    }
    let retvar = proc.return_var.as_deref()?;
    let mut relations = Vec::new();
    let mut any = false;
    for f in sig.handle_params() {
        let to_ret = exit.matrix.get(f, retvar);
        let from_ret = exit.matrix.get(retvar, f);
        if !to_ret.is_empty() || !from_ret.is_empty() {
            any = true;
        }
        relations.push((f.to_string(), to_ret, from_ret));
    }
    // Fresh if unrelated to every formal and every symbolic context handle.
    let unrelated_to_symbolics = exit
        .matrix
        .handles()
        .iter()
        .filter(|h| is_symbolic(h))
        .all(|h| exit.matrix.unrelated(h, retvar));
    Some(ReturnSummary {
        fresh: !any && unrelated_to_symbolics,
        relations,
    })
}

/// Analyze a whole (normalized, type-checked) program.
pub fn analyze_program(program: &Program, types: &ProgramTypes) -> AnalysisResult {
    run_analysis(Analyzer::new(program, types), program, types)
}

/// Analyze a program with precomputed argument-mode summaries.
///
/// This is the summary-reuse hook for the memoizing engine: summaries are
/// pure functions of each procedure's call-graph cone (see
/// [`crate::callgraph::CallGraph::cone_fingerprints`]), so a cache can
/// supply them and skip [`crate::summary::compute_summaries`] entirely.
/// With identical summaries the result is identical to [`analyze_program`].
pub fn analyze_program_with_summaries(
    program: &Program,
    types: &ProgramTypes,
    summaries: HashMap<String, ProcSummary>,
) -> AnalysisResult {
    run_analysis(
        Analyzer::with_summaries(program, types, summaries),
        program,
        types,
    )
}

fn run_analysis(analyzer: Analyzer<'_>, program: &Program, types: &ProgramTypes) -> AnalysisResult {
    let mut contexts: HashMap<String, AbstractState> = HashMap::new();
    if let Some(main_sig) = types.proc("main") {
        contexts.insert("main".to_string(), default_entry(main_sig));
    }
    let mut procedures: HashMap<String, ProcedureAnalysis> = HashMap::new();
    let mut return_summaries: HashMap<String, ReturnSummary> = HashMap::new();
    let mut rounds = 0;

    for round in 0..MAX_ROUNDS {
        rounds = round + 1;
        let mut changed = false;
        for proc in &program.procedures {
            let Some(sig) = types.proc(&proc.name) else {
                continue;
            };
            let Some(entry) = contexts.get(&proc.name).cloned() else {
                continue;
            };
            let mut warnings = Vec::new();
            let mut points = Vec::new();
            let mut counter = 0usize;
            let exit = record_points(
                &analyzer,
                &entry,
                &proc.body,
                sig,
                &mut counter,
                &mut points,
                &mut warnings,
            );

            // Propagate call-site contributions into callee contexts.
            for site in analyzer.take_call_sites() {
                let contribution = context_contribution(&site, types);
                let updated = match contexts.get(&site.callee) {
                    Some(existing) => existing.join(&contribution),
                    None => contribution,
                };
                let is_new = !contexts.contains_key(&site.callee);
                if is_new || !contexts[&site.callee].same_as(&updated) {
                    contexts.insert(site.callee.clone(), updated);
                    changed = true;
                }
            }

            // Function-return summaries feed the next round.
            if let Some(summary) = return_summary_from_exit(proc, sig, &exit) {
                let is_change = return_summaries.get(&proc.name) != Some(&summary);
                if is_change {
                    return_summaries.insert(proc.name.clone(), summary.clone());
                    analyzer.set_return_summary(&proc.name, summary);
                    changed = true;
                }
            }

            // The structural classification at exit feeds the caller-side
            // call transfer in the next round.
            let prev_exit_kind = analyzer.exit_structures.borrow().get(&proc.name).copied();
            if prev_exit_kind != Some(exit.structure) {
                analyzer.set_exit_structure(&proc.name, exit.structure);
                changed = true;
            }

            procedures.insert(
                proc.name.clone(),
                ProcedureAnalysis {
                    name: proc.name.clone(),
                    entry,
                    points,
                    exit,
                    warnings,
                },
            );
        }
        if !changed {
            break;
        }
        // Refresh entries for the next round from the (possibly grown)
        // contexts.
        for proc in &program.procedures {
            if let (Some(_sig), Some(_)) = (types.proc(&proc.name), contexts.get(&proc.name)) {
                // nothing extra: contexts map is already up to date
            }
        }
    }

    let mut warnings: Vec<StructureWarning> = Vec::new();
    for analysis in procedures.values() {
        for w in &analysis.warnings {
            if !warnings.contains(w) {
                warnings.push(w.clone());
            }
        }
    }
    warnings.sort_by(|a, b| {
        (a.procedure.clone(), a.statement.clone()).cmp(&(b.procedure.clone(), b.statement.clone()))
    });

    AnalysisResult {
        procedures,
        summaries: analyzer.summaries.clone(),
        return_summaries,
        warnings,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sil_lang::frontend;

    fn analyze(src: &str) -> (AnalysisResult, sil_lang::Program, ProgramTypes) {
        let (program, types) = frontend(src).unwrap();
        let result = analyze_program(&program, &types);
        (result, program, types)
    }

    #[test]
    fn figure_7_point_a_matrix() {
        let (result, _, _) = analyze(sil_lang::testsrc::ADD_AND_REVERSE);
        let main = result.procedure("main").unwrap();
        let point_a = main.state_before_call("add_n", 0).unwrap();
        // pA of Figure 7: root → lside = L1, root → rside = R1, lside and
        // rside unrelated.
        assert_eq!(point_a.matrix.get("root", "lside").to_string(), "L1");
        assert_eq!(point_a.matrix.get("root", "rside").to_string(), "R1");
        assert!(point_a.matrix.unrelated("lside", "rside"));
        assert!(point_a.structure.is_tree());
    }

    #[test]
    fn figure_7_point_b_matrix() {
        let (result, _, _) = analyze(sil_lang::testsrc::ADD_AND_REVERSE);
        let add_n = result.procedure("add_n").expect("add_n was analyzed");
        let point_b = add_n.state_before_call("add_n", 0).unwrap();
        // pB of Figure 7: h → l = L1, h → r = R1, l and r unrelated — the
        // recursive calls may execute in parallel.
        assert_eq!(point_b.matrix.get("h", "l").to_string(), "L1");
        assert_eq!(point_b.matrix.get("h", "r").to_string(), "R1");
        assert!(point_b.matrix.unrelated("l", "r"));
        // The symbolic caller handles are present and sit above h.
        let sym = immediate_symbol("h");
        assert!(point_b.matrix.contains(&sym));
        assert!(
            !point_b.matrix.get(&sym, "h").is_empty(),
            "h* should be related (above) h:\n{}",
            point_b.matrix.render()
        );
        assert!(point_b.matrix.get("h", &sym).is_empty());
    }

    #[test]
    fn figure_7_point_c_matrix() {
        let (result, _, _) = analyze(sil_lang::testsrc::ADD_AND_REVERSE);
        let reverse = result.procedure("reverse").expect("reverse was analyzed");
        let point_c = reverse.state_before_call("reverse", 0).unwrap();
        assert!(point_c.matrix.unrelated("l", "r"));
        assert_eq!(point_c.matrix.get("h", "l").to_string(), "L1");
    }

    #[test]
    fn add_and_reverse_preserves_tree() {
        let (result, _, _) = analyze(sil_lang::testsrc::ADD_AND_REVERSE);
        // The temporary DAG inside reverse's swap is reported as a warning…
        let reverse = result.procedure("reverse").unwrap();
        assert_eq!(reverse.exit.structure, crate::state::StructureKind::Tree);
        // …but the structure is a TREE again at procedure exit, and main
        // finishes with a TREE.
        let main = result.procedure("main").unwrap();
        assert!(main.exit.structure.is_tree());
        assert!(result.rounds <= MAX_ROUNDS);
    }

    #[test]
    fn build_function_returns_fresh_tree() {
        let (result, _, _) = analyze(sil_lang::testsrc::ADD_AND_REVERSE);
        let build = result
            .return_summaries
            .get("build")
            .expect("summary for build");
        assert!(build.fresh);
        // and in main, root is unrelated to the loop counter handles
        let main = result.procedure("main").unwrap();
        let point = main.state_before("lside := root.left").unwrap();
        assert!(point.matrix.contains("root"));
    }

    #[test]
    fn cycle_creation_is_reported() {
        let src = r#"
program bad
procedure main()
  t, d: handle
begin
  t := new();
  d := new();
  t.left := d;
  d.left := t
end
"#;
        let (result, _, _) = analyze(src);
        assert!(!result.preserves_tree());
        assert!(result
            .warnings
            .iter()
            .any(|w| w.kind == crate::state::StructureKind::PossiblyCyclic));
        let main = result.procedure("main").unwrap();
        assert_eq!(
            main.exit.structure,
            crate::state::StructureKind::PossiblyCyclic
        );
    }

    #[test]
    fn dag_creation_is_reported() {
        let src = r#"
program shares
procedure main()
  t, u, a: handle
begin
  t := new();
  u := new();
  a := new();
  t.left := a;
  u.left := a
end
"#;
        let (result, _, _) = analyze(src);
        assert!(result
            .warnings
            .iter()
            .any(|w| w.kind == crate::state::StructureKind::PossiblyDag));
        let main = result.procedure("main").unwrap();
        assert_eq!(
            main.exit.structure,
            crate::state::StructureKind::PossiblyDag
        );
    }

    #[test]
    fn recursive_context_stabilizes() {
        let (result, _, _) = analyze(sil_lang::testsrc::ADD_AND_REVERSE);
        assert!(
            result.rounds < MAX_ROUNDS,
            "analysis did not converge early enough ({} rounds)",
            result.rounds
        );
        // every reachable procedure got analyzed
        for name in ["main", "add_n", "reverse", "build"] {
            assert!(result.procedure(name).is_some(), "{name} missing");
        }
    }

    #[test]
    fn leftmost_loop_analysis() {
        let (result, _, _) = analyze(sil_lang::testsrc::LEFTMOST_LOOP);
        let main = result.procedure("main").unwrap();
        // after the loop (exit state) l is somewhere on the left spine of h
        let hl = main.exit.matrix.get("h", "l");
        assert!(!hl.is_empty());
        assert!(hl
            .iter()
            .all(|p| p.links().iter().all(|l| l.dir == sil_pathmatrix::Dir::Left)));
        assert!(main.exit.structure.is_tree());
    }

    #[test]
    fn unreachable_procedures_are_not_analyzed() {
        let src = r#"
program p
procedure never(t: handle)
begin
  t.left := t
end
procedure main()
  x: handle
begin
  x := new()
end
"#;
        let (result, _, _) = analyze(src);
        assert!(result.procedure("never").is_none());
        assert!(result.preserves_tree(), "dead code raises no warnings");
    }

    #[test]
    fn points_have_stable_labels() {
        let (result, _, _) = analyze(sil_lang::testsrc::ADD_AND_REVERSE);
        let main = result.procedure("main").unwrap();
        assert!(main.points.iter().all(|p| p.label.starts_with("main:")));
        assert!(main.points.len() >= 6);
        // the first point is before `i := 4`
        assert!(main.points[0].statement.contains("i := 4"));
    }
}
