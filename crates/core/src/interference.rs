//! Interference between basic statements and between procedure calls
//! (Sections 5.1 and 5.2).
//!
//! * A *location* is `(name, kind)` where kind is `var`, `left`, `right` or
//!   `value`.
//! * The *alias function* `A(a, f, p)` returns every location `(x, f)` such
//!   that the path-matrix entry `p[a, x]` contains `S` or `S?` — i.e. `x` may
//!   name the same node as `a`.
//! * `R(s, p)` / `W(s, p)` are the read and write sets of Figure 5 (extended
//!   to the scalar, value and call statement forms).
//! * The *interference set* `I(si, sj, p)` is empty exactly when it is safe
//!   to execute the two statements in parallel; the incremental n-statement
//!   generalisation underlies the statement-packing transformation
//!   (Figure 4).
//! * Procedure calls interfere unless every *update* argument of one call is
//!   unrelated to every argument of the other (and vice versa) — §5.2.

use crate::state::AbstractState;
use crate::summary::ProcSummary;
use sil_lang::ast::*;
use sil_lang::basic::BasicStmt;
use sil_lang::types::ProcSignature;
use sil_pathmatrix::PathMatrix;
use std::collections::BTreeSet;
use std::fmt;

/// The kind of a location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LocationKind {
    /// The variable itself.
    Var,
    /// The `left` field of the node named by the variable.
    Left,
    /// The `right` field of the node named by the variable.
    Right,
    /// The `value` field of the node named by the variable.
    Value,
}

impl LocationKind {
    /// The location kind of a structural field.
    pub fn of_field(field: Field) -> LocationKind {
        match field {
            Field::Left => LocationKind::Left,
            Field::Right => LocationKind::Right,
        }
    }
}

impl fmt::Display for LocationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LocationKind::Var => write!(f, "var"),
            LocationKind::Left => write!(f, "left"),
            LocationKind::Right => write!(f, "right"),
            LocationKind::Value => write!(f, "value"),
        }
    }
}

/// A location `(name, kind)`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Location {
    pub name: String,
    pub kind: LocationKind,
}

impl Location {
    pub fn new(name: impl Into<String>, kind: LocationKind) -> Location {
        Location {
            name: name.into(),
            kind,
        }
    }

    pub fn var(name: impl Into<String>) -> Location {
        Location::new(name, LocationKind::Var)
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.name, self.kind)
    }
}

/// The alias function `A(a, f, p)`: the set of locations `(x, f)` that may be
/// aliased to `(a, f)` — including `(a, f)` itself.
pub fn alias_set(a: &str, kind: LocationKind, matrix: &PathMatrix) -> BTreeSet<Location> {
    let mut out = BTreeSet::new();
    out.insert(Location::new(a, kind));
    let Some(sa) = sil_pathmatrix::lookup(a).filter(|&s| matrix.contains_sym(s)) else {
        return out;
    };
    for &x in matrix.handles() {
        if x == sa {
            continue;
        }
        if matrix.get_sym(sa, x).may_be_same() || matrix.get_sym(x, sa).may_be_same() {
            out.insert(Location::new(x.as_str(), kind));
        }
    }
    out
}

/// Locations read by the integer expression `e` (variable reads plus `value`
/// fields of dereferenced handles, expanded through the alias function).
fn expr_read_locations(e: &Expr, matrix: &PathMatrix) -> BTreeSet<Location> {
    let mut out = BTreeSet::new();
    collect_expr_reads(e, matrix, &mut out);
    out
}

fn collect_expr_reads(e: &Expr, matrix: &PathMatrix, out: &mut BTreeSet<Location>) {
    match e {
        Expr::Int(_) | Expr::Nil => {}
        Expr::Path(p) => {
            out.insert(Location::var(p.base.clone()));
            // A single-field load inside a condition also reads the field.
            if let Some(field) = p.fields.first() {
                out.extend(alias_set(&p.base, LocationKind::of_field(*field), matrix));
            }
        }
        Expr::Value(p) => {
            out.insert(Location::var(p.base.clone()));
            out.extend(alias_set(&p.base, LocationKind::Value, matrix));
        }
        Expr::Unary(_, inner) => collect_expr_reads(inner, matrix, out),
        Expr::Binary(_, lhs, rhs) => {
            collect_expr_reads(lhs, matrix, out);
            collect_expr_reads(rhs, matrix, out);
        }
    }
}

/// The read set `R(s, p)` of a basic statement (Figure 5, extended).
pub fn read_set(stmt: &Stmt, sig: &ProcSignature, matrix: &PathMatrix) -> BTreeSet<Location> {
    let mut out = BTreeSet::new();
    let Some(basic) = BasicStmt::classify(stmt, sig) else {
        // Conditions and compound statements: collect from the condition only.
        if let Stmt::If { cond, .. } | Stmt::While { cond, .. } = stmt {
            out.extend(expr_read_locations(cond, matrix));
        }
        return out;
    };
    match basic {
        BasicStmt::AssignNil { .. } | BasicStmt::AssignNew { .. } => {}
        BasicStmt::AssignCopy { src, .. } => {
            out.insert(Location::var(src));
        }
        BasicStmt::AssignLoad { src, field, .. } => {
            out.insert(Location::var(src));
            out.extend(alias_set(src, LocationKind::of_field(field), matrix));
        }
        BasicStmt::StoreField { dst, src, .. } => {
            out.insert(Location::var(dst));
            out.insert(Location::var(src));
        }
        BasicStmt::StoreFieldNil { dst, .. } => {
            out.insert(Location::var(dst));
        }
        BasicStmt::ValueLoad { src, .. } => {
            out.insert(Location::var(src));
            out.extend(alias_set(src, LocationKind::Value, matrix));
        }
        BasicStmt::ValueStore { dst, value } => {
            out.insert(Location::var(dst));
            out.extend(expr_read_locations(value, matrix));
        }
        BasicStmt::ScalarAssign { value, .. } => {
            out.extend(expr_read_locations(value, matrix));
        }
        BasicStmt::FuncAssign { args, .. } | BasicStmt::ProcCall { args, .. } => {
            for a in args {
                out.extend(expr_read_locations(a, matrix));
            }
        }
    }
    out
}

/// The write set `W(s, p)` of a basic statement (Figure 5, extended).
pub fn write_set(stmt: &Stmt, sig: &ProcSignature, matrix: &PathMatrix) -> BTreeSet<Location> {
    let mut out = BTreeSet::new();
    let Some(basic) = BasicStmt::classify(stmt, sig) else {
        return out;
    };
    match basic {
        BasicStmt::AssignNil { dst }
        | BasicStmt::AssignNew { dst }
        | BasicStmt::AssignCopy { dst, .. }
        | BasicStmt::AssignLoad { dst, .. }
        | BasicStmt::ValueLoad { dst, .. }
        | BasicStmt::ScalarAssign { dst, .. }
        | BasicStmt::FuncAssign { dst, .. } => {
            out.insert(Location::var(dst));
        }
        BasicStmt::StoreField { dst, field, .. } | BasicStmt::StoreFieldNil { dst, field } => {
            out.extend(alias_set(dst, LocationKind::of_field(field), matrix));
        }
        BasicStmt::ValueStore { dst, .. } => {
            out.extend(alias_set(dst, LocationKind::Value, matrix));
        }
        BasicStmt::ProcCall { .. } => {}
    }
    out
}

/// The interference set `I(si, sj, p)`: the locations through which the two
/// statements may interfere.  Empty means the statements may execute in
/// parallel (§5.1).
pub fn interference_set(
    s1: &Stmt,
    s2: &Stmt,
    sig: &ProcSignature,
    matrix: &PathMatrix,
) -> BTreeSet<Location> {
    let r1 = read_set(s1, sig, matrix);
    let w1 = write_set(s1, sig, matrix);
    let r2 = read_set(s2, sig, matrix);
    let w2 = write_set(s2, sig, matrix);
    let mut out = BTreeSet::new();
    for loc in &w1 {
        if r2.contains(loc) || w2.contains(loc) {
            out.insert(loc.clone());
        }
    }
    for loc in &w2 {
        if r1.contains(loc) || w1.contains(loc) {
            out.insert(loc.clone());
        }
    }
    out
}

/// Whether `n` statements are pairwise non-interfering at a program point
/// with path matrix `matrix` — the incremental generalisation of §5.1.
///
/// Calls embedded in the slice are additionally checked with the
/// coarse-grain §5.2 method through `summaries`.
pub fn statements_independent(
    stmts: &[&Stmt],
    sig: &ProcSignature,
    matrix: &PathMatrix,
    summaries: &std::collections::HashMap<String, ProcSummary>,
) -> bool {
    for i in 0..stmts.len() {
        for j in (i + 1)..stmts.len() {
            if !pair_independent(stmts[i], stmts[j], sig, matrix, summaries) {
                return false;
            }
        }
    }
    true
}

/// Decompose a statement into call parts if it is a procedure call or a
/// function-call assignment: `(callee, args, assigned variable if any)`.
pub fn call_parts(stmt: &Stmt) -> Option<(&str, &[Expr], Option<&str>)> {
    match stmt {
        Stmt::Call { proc, args, .. } => Some((proc, args, None)),
        Stmt::Assign {
            lhs: LValue::Var(dst),
            rhs: Rhs::Call(func, args),
            ..
        } => Some((func, args, Some(dst))),
        _ => None,
    }
}

fn pair_independent(
    s1: &Stmt,
    s2: &Stmt,
    sig: &ProcSignature,
    matrix: &PathMatrix,
    summaries: &std::collections::HashMap<String, ProcSummary>,
) -> bool {
    let c1 = call_parts(s1).is_some();
    let c2 = call_parts(s2).is_some();
    match (c1, c2) {
        (false, false) => interference_set(s1, s2, sig, matrix).is_empty(),
        (true, true) => !call_call_interference(s1, s2, sig, matrix, summaries),
        (true, false) => !call_stmt_interference(s1, s2, sig, matrix, summaries),
        (false, true) => !call_stmt_interference(s2, s1, sig, matrix, summaries),
    }
}

/// The handle argument variables of a call statement.
pub fn locations_of_call<'a>(call: &'a Stmt, sig: &ProcSignature) -> Vec<&'a str> {
    let Stmt::Call { args, .. } = call else {
        return Vec::new();
    };
    args.iter()
        .filter_map(|a| a.as_var())
        .filter(|v| sig.is_handle(v))
        .collect()
}

fn handle_args_with_modes<'a>(
    call: &'a Stmt,
    sig: &ProcSignature,
    summaries: &std::collections::HashMap<String, ProcSummary>,
) -> Option<(Vec<&'a str>, Vec<&'a str>, bool)> {
    let (callee, args, _) = call_parts(call)?;
    let summary = summaries.get(callee)?;
    let mut all = Vec::new();
    let mut update = Vec::new();
    for (idx, arg) in args.iter().enumerate() {
        let Some(var) = arg.as_var() else { continue };
        if !sig.is_handle(var) {
            continue;
        }
        all.push(var);
        if summary.mode_of_position(idx).is_some_and(|m| m.is_update()) {
            update.push(var);
        }
    }
    Some((all, update, summary.has_update_args()))
}

/// §5.2: do two procedure calls interfere?
///
/// The calls do **not** interfere when every handle in the first call's
/// update-argument set is unrelated to every handle argument of the second
/// call, and vice versa.  Scalar arguments never interfere (call-by-value).
/// Unknown callees are assumed to interfere.
pub fn call_call_interference(
    call1: &Stmt,
    call2: &Stmt,
    sig: &ProcSignature,
    matrix: &PathMatrix,
    summaries: &std::collections::HashMap<String, ProcSummary>,
) -> bool {
    let Some((all1, update1, _)) = handle_args_with_modes(call1, sig, summaries) else {
        return true;
    };
    let Some((all2, update2, _)) = handle_args_with_modes(call2, sig, summaries) else {
        return true;
    };
    // Function-call assignments also write their destination variable and
    // read the variables named in every argument expression.
    let (_, args1, dst1) = call_parts(call1).expect("checked above");
    let (_, args2, dst2) = call_parts(call2).expect("checked above");
    let vars1: BTreeSet<String> = args1.iter().flat_map(|a| a.variables()).collect();
    let vars2: BTreeSet<String> = args2.iter().flat_map(|a| a.variables()).collect();
    if let Some(d1) = dst1 {
        if vars2.contains(d1) || dst2 == Some(d1) {
            return true;
        }
    }
    if let Some(d2) = dst2 {
        if vars1.contains(d2) {
            return true;
        }
    }
    let related = |x: &str, y: &str| x == y || !matrix.unrelated(x, y);
    for u in &update1 {
        if all2.iter().any(|a| related(u, a)) {
            return true;
        }
    }
    for u in &update2 {
        if all1.iter().any(|a| related(u, a)) {
            return true;
        }
    }
    false
}

/// Interference between a procedure call and a basic statement.
///
/// The call may touch any node reachable from its handle arguments (writes
/// only through its update arguments); the statement's read/write locations
/// name nodes directly.  They interfere when a handle named in the
/// statement's locations is related to an update argument (either order), or
/// the statement writes a handle that is related to *any* argument, or the
/// statement writes one of the call's argument variables themselves.
pub fn call_stmt_interference(
    call: &Stmt,
    stmt: &Stmt,
    sig: &ProcSignature,
    matrix: &PathMatrix,
    summaries: &std::collections::HashMap<String, ProcSummary>,
) -> bool {
    let Some((all_args, update_args, _)) = handle_args_with_modes(call, sig, summaries) else {
        return true;
    };
    let reads = read_set(stmt, sig, matrix);
    let writes = write_set(stmt, sig, matrix);

    // The statement redefines a variable the call reads as an argument.
    let Some((_, args, dst)) = call_parts(call) else {
        return true;
    };
    let arg_vars: BTreeSet<String> = args.iter().flat_map(|a| a.variables()).collect();
    if writes
        .iter()
        .any(|w| w.kind == LocationKind::Var && arg_vars.contains(&w.name))
    {
        return true;
    }
    // A function-call assignment writes its destination variable.
    if let Some(d) = dst {
        let dloc = Location::var(d);
        if reads.contains(&dloc) || writes.contains(&dloc) {
            return true;
        }
    }

    let related = |x: &str, y: &str| x == y || !matrix.unrelated(x, y);
    // The call may write nodes reachable from its update arguments; the
    // statement touches node fields of handles related to them.
    let stmt_node_handles = |locs: &BTreeSet<Location>| -> Vec<String> {
        locs.iter()
            .filter(|l| l.kind != LocationKind::Var && sig.is_handle(&l.name))
            .map(|l| l.name.clone())
            .collect()
    };
    for h in stmt_node_handles(&reads)
        .into_iter()
        .chain(stmt_node_handles(&writes))
    {
        if update_args.iter().any(|u| related(&h, u)) {
            return true;
        }
    }
    // The statement *writes* node fields of handles related to any argument
    // (the call might read them).
    for h in stmt_node_handles(&writes) {
        if all_args.iter().any(|a| related(&h, a)) {
            return true;
        }
    }
    false
}

/// Whether a statement may read or write heap node locations (any `left`,
/// `right` or `value` field), or is a call (which may touch any node
/// reachable from its arguments).  Statements that only touch variables are
/// safe to parallelize regardless of the heap's structural classification;
/// node-touching statements rely on the TREE disjointness guarantees of
/// §3.1, so the parallelizer only packs them when the analysis still
/// classifies the structure as a TREE.
pub fn touches_node_locations(stmt: &Stmt, sig: &ProcSignature) -> bool {
    if call_parts(stmt).is_some() {
        return true;
    }
    let empty = PathMatrix::new();
    let reads = read_set(stmt, sig, &empty);
    let writes = write_set(stmt, sig, &empty);
    reads
        .iter()
        .chain(writes.iter())
        .any(|l| l.kind != LocationKind::Var)
}

/// Convenience wrapper: interference of two statements in a full abstract
/// state (uses the state's matrix).
pub fn independent_in_state(
    s1: &Stmt,
    s2: &Stmt,
    sig: &ProcSignature,
    state: &AbstractState,
    summaries: &std::collections::HashMap<String, ProcSummary>,
) -> bool {
    pair_independent(s1, s2, sig, &state.matrix, summaries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::compute_summaries;
    use sil_lang::frontend;
    use sil_lang::parser::parse_stmt;
    use sil_lang::types::Type;
    use sil_pathmatrix::{at_least, exact, same, Dir, PathSet};
    use std::collections::HashMap;

    fn sig(handles: &[&str], ints: &[&str]) -> ProcSignature {
        let mut vars = HashMap::new();
        for h in handles {
            vars.insert(h.to_string(), Type::Handle);
        }
        for i in ints {
            vars.insert(i.to_string(), Type::Int);
        }
        ProcSignature {
            name: "test".into(),
            params: vec![],
            return_type: None,
            vars,
        }
    }

    /// The path matrix of Figure 6: a and b are handles to the same node;
    /// c and d may be the same node or d may be some right links below c.
    fn figure6_matrix() -> PathMatrix {
        let mut m = PathMatrix::with_handles(["a", "b", "c", "d"]);
        m.set("a", "b", PathSet::singleton(same()));
        m.set("b", "a", PathSet::singleton(same()));
        m.set("a", "d", PathSet::singleton(at_least(Dir::Down, 1)));
        m.set("b", "d", PathSet::singleton(at_least(Dir::Down, 1)));
        m.set(
            "c",
            "d",
            PathSet::from_paths(vec![same().weakened(), at_least(Dir::Right, 1).weakened()]),
        );
        m.set("d", "c", PathSet::singleton(same().weakened()));
        m
    }

    #[test]
    fn alias_set_follows_s_entries() {
        let m = figure6_matrix();
        let aliases = alias_set("a", LocationKind::Left, &m);
        let names: Vec<&str> = aliases.iter().map(|l| l.name.as_str()).collect();
        assert!(names.contains(&"a") && names.contains(&"b"));
        assert!(!names.contains(&"d"), "D+ is not an S relation");
        let aliases = alias_set("c", LocationKind::Value, &m);
        let names: Vec<&str> = aliases.iter().map(|l| l.name.as_str()).collect();
        assert!(names.contains(&"c") && names.contains(&"d"));
    }

    #[test]
    fn figure_6_example_1_variable_interference() {
        // s1: x := a.left   s2: y := x   — interfere through (x, var)
        let s = sig(&["a", "b", "c", "d"], &["x", "y", "n"]);
        let m = figure6_matrix();
        let s1 = parse_stmt("x := a.left").unwrap();
        let s2 = parse_stmt("y := x").unwrap();
        let i = interference_set(&s1, &s2, &s, &m);
        assert_eq!(
            i,
            BTreeSet::from([Location::var("x")]),
            "expected interference exactly through (x, var)"
        );
    }

    #[test]
    fn figure_6_example_2_field_interference() {
        // s1: x := a.left   s2: b.left := nil — interfere through the left
        // field of the shared node (a,left)/(b,left).
        let s = sig(&["a", "b", "c", "d"], &["x", "y", "n"]);
        let m = figure6_matrix();
        let s1 = parse_stmt("x := a.left").unwrap();
        let s2 = parse_stmt("b.left := nil").unwrap();
        let i = interference_set(&s1, &s2, &s, &m);
        assert!(i.contains(&Location::new("a", LocationKind::Left)), "{i:?}");
        assert!(i.contains(&Location::new("b", LocationKind::Left)), "{i:?}");
        assert!(!i.contains(&Location::var("x")));
    }

    #[test]
    fn figure_6_example_3_conservative_value_interference() {
        // s1: n := d.value   s2: c.value := 0 — c and d may alias, so the
        // analysis conservatively reports interference on the value field.
        let s = sig(&["a", "b", "c", "d"], &["x", "y", "n"]);
        let m = figure6_matrix();
        let s1 = parse_stmt("n := d.value").unwrap();
        let s2 = parse_stmt("c.value := 0").unwrap();
        let i = interference_set(&s1, &s2, &s, &m);
        assert!(
            i.contains(&Location::new("c", LocationKind::Value)),
            "{i:?}"
        );
        assert!(
            i.contains(&Location::new("d", LocationKind::Value)),
            "{i:?}"
        );
    }

    #[test]
    fn independent_statements_have_empty_interference() {
        let s = sig(&["h", "l", "r"], &["n"]);
        let mut m = PathMatrix::with_handles(["h", "l", "r"]);
        m.set("h", "l", PathSet::singleton(exact(Dir::Left, 1)));
        m.set("h", "r", PathSet::singleton(exact(Dir::Right, 1)));
        // The parallel statement of Figure 8's add_n:
        //   h.value := h.value + n || l := h.left || r := h.right
        let s1 = parse_stmt("h.value := h.value + n").unwrap();
        let s2 = parse_stmt("l := h.left").unwrap();
        let s3 = parse_stmt("r := h.right").unwrap();
        assert!(interference_set(&s1, &s2, &s, &m).is_empty());
        assert!(interference_set(&s1, &s3, &s, &m).is_empty());
        assert!(interference_set(&s2, &s3, &s, &m).is_empty());
        let summaries = HashMap::new();
        assert!(statements_independent(&[&s1, &s2, &s3], &s, &m, &summaries));
    }

    #[test]
    fn write_write_conflict_detected() {
        let s = sig(&["a"], &["x"]);
        let m = PathMatrix::with_handles(["a"]);
        let s1 = parse_stmt("x := 1").unwrap();
        let s2 = parse_stmt("x := 2").unwrap();
        assert!(!interference_set(&s1, &s2, &s, &m).is_empty());
    }

    #[test]
    fn aliased_value_store_conflicts() {
        let s = sig(&["a", "b"], &[]);
        let mut m = PathMatrix::with_handles(["a", "b"]);
        m.set("a", "b", PathSet::singleton(same().weakened()));
        let s1 = parse_stmt("a.value := 1").unwrap();
        let s2 = parse_stmt("b.value := 2").unwrap();
        assert!(!interference_set(&s1, &s2, &s, &m).is_empty());
        // unrelated handles do not conflict
        let m2 = PathMatrix::with_handles(["a", "b"]);
        assert!(interference_set(&s1, &s2, &s, &m2).is_empty());
    }

    #[test]
    fn load_conflicts_with_store_of_same_field() {
        let s = sig(&["a", "b", "c"], &[]);
        let m = PathMatrix::with_handles(["a", "b", "c"]);
        let s1 = parse_stmt("b := a.left").unwrap();
        let s2 = parse_stmt("a.left := c").unwrap();
        assert!(!interference_set(&s1, &s2, &s, &m).is_empty());
        // a store to the *other* field does not conflict
        let s3 = parse_stmt("a.right := c").unwrap();
        assert!(interference_set(&s1, &s3, &s, &m).is_empty());
    }

    fn add_and_reverse_setup() -> (
        sil_lang::Program,
        sil_lang::ProgramTypes,
        HashMap<String, ProcSummary>,
    ) {
        let (program, types) = frontend(sil_lang::testsrc::ADD_AND_REVERSE).unwrap();
        let summaries = compute_summaries(&program, &types);
        (program, types, summaries)
    }

    #[test]
    fn figure_7_point_a_calls_do_not_interfere() {
        // pA: root -> lside (L1), root -> rside (R1); lside and rside unrelated.
        let (_, types, summaries) = add_and_reverse_setup();
        let sig = types.proc("main").unwrap();
        let mut m = PathMatrix::with_handles(["root", "lside", "rside"]);
        m.set("root", "lside", PathSet::singleton(exact(Dir::Left, 1)));
        m.set("root", "rside", PathSet::singleton(exact(Dir::Right, 1)));
        let c1 = parse_stmt("add_n(lside, 1)").unwrap();
        let c2 = parse_stmt("add_n(rside, -1)").unwrap();
        assert!(!call_call_interference(&c1, &c2, sig, &m, &summaries));
        // but each add_n call interferes with reverse(root): root is related
        // to both argument handles.
        let c3 = parse_stmt("reverse(root)").unwrap();
        assert!(call_call_interference(&c1, &c3, sig, &m, &summaries));
        assert!(call_call_interference(&c2, &c3, sig, &m, &summaries));
    }

    #[test]
    fn figure_7_point_b_recursive_calls_do_not_interfere() {
        let (_, types, summaries) = add_and_reverse_setup();
        let sig = types.proc("add_n").unwrap();
        let mut m = PathMatrix::with_handles(["h", "l", "r"]);
        m.set("h", "l", PathSet::singleton(exact(Dir::Left, 1)));
        m.set("h", "r", PathSet::singleton(exact(Dir::Right, 1)));
        let c1 = parse_stmt("add_n(l, n)").unwrap();
        let c2 = parse_stmt("add_n(r, n)").unwrap();
        assert!(!call_call_interference(&c1, &c2, sig, &m, &summaries));
    }

    #[test]
    fn read_only_calls_never_interfere_even_when_related() {
        let src = r#"
program p
procedure visit(t: handle)
  l: handle
begin
  if t <> nil then
  begin
    l := t.left;
    visit(l)
  end
end
procedure main()
  root, sub: handle
begin
  root := new();
  sub := root.left;
  visit(root);
  visit(sub)
end
"#;
        let (program, types) = frontend(src).unwrap();
        let summaries = compute_summaries(&program, &types);
        let sig = types.proc("main").unwrap();
        let mut m = PathMatrix::with_handles(["root", "sub"]);
        m.set("root", "sub", PathSet::singleton(exact(Dir::Left, 1)));
        let c1 = parse_stmt("visit(root)").unwrap();
        let c2 = parse_stmt("visit(sub)").unwrap();
        assert!(!call_call_interference(&c1, &c2, sig, &m, &summaries));
    }

    #[test]
    fn calls_on_related_handles_interfere_when_updating() {
        let (_, types, summaries) = add_and_reverse_setup();
        let sig = types.proc("main").unwrap();
        let mut m = PathMatrix::with_handles(["root", "lside"]);
        m.set("root", "lside", PathSet::singleton(exact(Dir::Left, 1)));
        let c1 = parse_stmt("add_n(root, 1)").unwrap();
        let c2 = parse_stmt("add_n(lside, 1)").unwrap();
        assert!(call_call_interference(&c1, &c2, sig, &m, &summaries));
    }

    #[test]
    fn unknown_callee_is_conservative() {
        let (_, types, _) = add_and_reverse_setup();
        let sig = types.proc("main").unwrap();
        let m = PathMatrix::with_handles(["lside", "rside"]);
        let summaries = HashMap::new();
        let c1 = parse_stmt("add_n(lside, 1)").unwrap();
        let c2 = parse_stmt("add_n(rside, -1)").unwrap();
        assert!(call_call_interference(&c1, &c2, sig, &m, &summaries));
    }

    #[test]
    fn call_vs_statement_interference() {
        let (_, types, summaries) = add_and_reverse_setup();
        let sig = types.proc("main").unwrap();
        let mut m = PathMatrix::with_handles(["root", "lside", "rside"]);
        m.set("root", "lside", PathSet::singleton(exact(Dir::Left, 1)));
        m.set("root", "rside", PathSet::singleton(exact(Dir::Right, 1)));
        let call = parse_stmt("add_n(lside, 1)").unwrap();
        // writing a value inside the updated subtree conflicts
        let w = parse_stmt("lside.value := 0").unwrap();
        assert!(call_stmt_interference(&call, &w, sig, &m, &summaries));
        // reading a value inside the updated subtree conflicts (add_n writes values)
        let r = parse_stmt("i := lside.value").unwrap();
        let mut sig2 = sig.clone();
        sig2.vars.insert("i".to_string(), Type::Int);
        assert!(call_stmt_interference(&call, &r, &sig2, &m, &summaries));
        // touching the disjoint right subtree does not conflict
        let ok = parse_stmt("rside.value := 0").unwrap();
        assert!(!call_stmt_interference(&call, &ok, sig, &m, &summaries));
        // redefining the argument variable itself conflicts
        let redef = parse_stmt("lside := nil").unwrap();
        assert!(call_stmt_interference(&call, &redef, sig, &m, &summaries));
    }

    #[test]
    fn statements_independent_mixed_calls_and_statements() {
        let (_, types, summaries) = add_and_reverse_setup();
        let sig = types.proc("main").unwrap();
        let mut m = PathMatrix::with_handles(["root", "lside", "rside"]);
        m.set("root", "lside", PathSet::singleton(exact(Dir::Left, 1)));
        m.set("root", "rside", PathSet::singleton(exact(Dir::Right, 1)));
        let c1 = parse_stmt("add_n(lside, 1)").unwrap();
        let s1 = parse_stmt("rside.value := 7").unwrap();
        assert!(statements_independent(&[&c1, &s1], sig, &m, &summaries));
        let bad = parse_stmt("lside := nil").unwrap();
        assert!(!statements_independent(
            &[&c1, &s1, &bad],
            sig,
            &m,
            &summaries
        ));
    }
}
