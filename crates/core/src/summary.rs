//! Procedure summaries: read-only vs. update handle arguments.
//!
//! Section 5.2 refines procedure-call interference by classifying each handle
//! argument as *read-only* or *update*.  We additionally distinguish
//! *value updates* (only `.value` fields of reachable nodes are written — the
//! path matrix is unaffected) from *structural updates* (`.left`/`.right`
//! fields are written — the shape of the reachable subtree may change), which
//! both sharpens interference answers and lets the caller-side transfer
//! function preserve the matrix across calls such as `add_n` that never
//! restructure the tree.
//!
//! The classification is a flow-insensitive fixpoint over the call graph
//! driven by a per-procedure *derived-from* map: which formals a local handle
//! variable may have been reached from.

use sil_lang::ast::*;
use sil_lang::basic::BasicStmt;
use sil_lang::types::{ProgramTypes, Type};
use sil_lang::visit::collect_simple_stmts;
use sil_pathmatrix::PathSet;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// How a procedure uses the nodes reachable from one of its handle arguments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ArgMode {
    /// Reachable nodes are only read.
    ReadOnly,
    /// `.value` fields of reachable nodes may be written; the structure is
    /// untouched.
    ValueUpdate,
    /// `.left`/`.right` fields of reachable nodes may be written.
    StructUpdate,
}

impl ArgMode {
    /// The paper's coarse classification: anything that writes is an update
    /// argument.
    pub fn is_update(self) -> bool {
        self != ArgMode::ReadOnly
    }

    /// Whether the argument's reachable structure may be reshaped.
    pub fn is_structural(self) -> bool {
        self == ArgMode::StructUpdate
    }
}

/// Relationship of a function's returned handle to its formals.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReturnSummary {
    /// The returned node is freshly allocated / unrelated to every argument.
    pub fresh: bool,
    /// For each handle formal: (formal name, paths formal→result, paths result→formal).
    pub relations: Vec<(String, PathSet, PathSet)>,
}

impl ReturnSummary {
    /// A stable content digest, used as part of the interprocedural driver's
    /// walk-memoization keys (two summaries digest equal iff they render
    /// equal).
    pub fn digest(&self) -> u64 {
        let mut hasher = sil_lang::hash::StableHasher::new();
        hasher.write_str("sil-return-summary-v1");
        hasher.write_u64(self.fresh as u64);
        for (formal, to_ret, from_ret) in &self.relations {
            hasher.write_str(formal);
            hasher.write_str(&to_ret.to_string());
            hasher.write_str(&from_ret.to_string());
        }
        hasher.finish()
    }
}

/// The summary of one procedure or function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcSummary {
    pub name: String,
    /// Mode of every *handle* parameter, keyed by its name.
    pub handle_args: BTreeMap<String, ArgMode>,
    /// Mode per parameter position (None for integer parameters).
    pub arg_modes: Vec<Option<ArgMode>>,
}

impl ProcSummary {
    /// The mode of the handle parameter at position `idx`, if it is a handle.
    pub fn mode_of_position(&self, idx: usize) -> Option<ArgMode> {
        self.arg_modes.get(idx).copied().flatten()
    }

    /// Whether any handle argument is an update argument.
    pub fn has_update_args(&self) -> bool {
        self.handle_args.values().any(|m| m.is_update())
    }

    /// Whether any handle argument may be structurally updated.
    pub fn has_structural_update(&self) -> bool {
        self.handle_args.values().any(|m| m.is_structural())
    }

    /// The names of the update handle parameters.
    pub fn update_args(&self) -> Vec<&str> {
        self.handle_args
            .iter()
            .filter(|(_, m)| m.is_update())
            .map(|(n, _)| n.as_str())
            .collect()
    }
}

/// Compute, for every local handle variable of `proc`, the set of handle
/// *formals* it may be derived from (reached from by following loads and
/// copies).  Formals derive from themselves.  The result is
/// flow-insensitive and therefore conservative.
pub fn derived_from(proc: &Procedure, types: &ProgramTypes) -> BTreeMap<String, BTreeSet<String>> {
    let Some(sig) = types.proc(&proc.name) else {
        return BTreeMap::new();
    };
    let mut derived: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for (name, ty) in &sig.params {
        if *ty == Type::Handle {
            derived.insert(name.clone(), BTreeSet::from([name.clone()]));
        }
    }
    let stmts = collect_simple_stmts(&proc.body);
    // Iterate to a fixpoint; the lattice is finite (subsets of formals).
    loop {
        let mut changed = false;
        for stmt in &stmts {
            let Some(basic) = BasicStmt::classify(stmt, sig) else {
                continue;
            };
            let flow = match basic {
                BasicStmt::AssignCopy { dst, src } => Some((dst, vec![src])),
                BasicStmt::AssignLoad { dst, src, .. } => Some((dst, vec![src])),
                BasicStmt::FuncAssign { dst, args, .. } if sig.is_handle(dst) => {
                    let sources: Vec<&str> = args
                        .iter()
                        .filter_map(|a| a.as_var())
                        .filter(|v| sig.is_handle(v))
                        .collect();
                    Some((dst, sources))
                }
                _ => None,
            };
            if let Some((dst, sources)) = flow {
                let mut incoming: BTreeSet<String> = BTreeSet::new();
                for src in sources {
                    if let Some(set) = derived.get(src) {
                        incoming.extend(set.iter().cloned());
                    }
                }
                let entry = derived.entry(dst.to_string()).or_default();
                let before = entry.len();
                entry.extend(incoming);
                if entry.len() != before {
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    derived
}

/// The all-read-only summary every fixpoint starts from.
fn initial_summary(name: &str, sig: &sil_lang::types::ProcSignature) -> ProcSummary {
    let handle_args: BTreeMap<String, ArgMode> = sig
        .handle_params()
        .into_iter()
        .map(|n| (n.to_string(), ArgMode::ReadOnly))
        .collect();
    let arg_modes = sig
        .params
        .iter()
        .map(|(_, t)| {
            if *t == Type::Handle {
                Some(ArgMode::ReadOnly)
            } else {
                None
            }
        })
        .collect();
    ProcSummary {
        name: name.to_string(),
        handle_args,
        arg_modes,
    }
}

/// One summary round for one procedure: the `(formal, mode)` upgrades its
/// body demands, given the current view of callee summaries.
fn collect_updates(
    proc: &Procedure,
    sig: &sil_lang::types::ProcSignature,
    derived: &BTreeMap<String, BTreeSet<String>>,
    callee_summary: impl Fn(&str) -> Option<ProcSummary>,
) -> Vec<(String, ArgMode)> {
    let mut updates: Vec<(String, ArgMode)> = Vec::new();
    for stmt in collect_simple_stmts(&proc.body) {
        let Some(basic) = BasicStmt::classify(stmt, sig) else {
            continue;
        };
        match basic {
            BasicStmt::StoreField { dst, .. } | BasicStmt::StoreFieldNil { dst, .. } => {
                if let Some(formals) = derived.get(dst) {
                    for f in formals {
                        updates.push((f.clone(), ArgMode::StructUpdate));
                    }
                }
            }
            BasicStmt::ValueStore { dst, .. } => {
                if let Some(formals) = derived.get(dst) {
                    for f in formals {
                        updates.push((f.clone(), ArgMode::ValueUpdate));
                    }
                }
            }
            BasicStmt::ProcCall { proc: callee, args }
            | BasicStmt::FuncAssign {
                func: callee, args, ..
            } => {
                let Some(callee_summary) = callee_summary(callee) else {
                    continue;
                };
                for (idx, arg) in args.iter().enumerate() {
                    let Some(mode) = callee_summary.mode_of_position(idx) else {
                        continue;
                    };
                    if !mode.is_update() {
                        continue;
                    }
                    let Some(var) = arg.as_var() else { continue };
                    if let Some(formals) = derived.get(var) {
                        for f in formals {
                            updates.push((f.clone(), mode));
                        }
                    }
                }
            }
            _ => {}
        }
    }
    updates
}

/// Compute the summaries of one strongly connected component of the call
/// graph, given `resolved` summaries for everything below it.
///
/// This is the engine's summary-reuse hook: callers that know some
/// components' summaries already (from a content-addressed cache) resolve
/// them and only pay the fixpoint for the components that missed.  The
/// members' summaries are a pure function of the members and their
/// transitive callees — see
/// [`crate::callgraph::CallGraph::cone_fingerprints`] for the matching cache
/// key.
pub fn compute_scc_summaries(
    program: &Program,
    types: &ProgramTypes,
    members: &[String],
    resolved: &HashMap<String, ProcSummary>,
) -> HashMap<String, ProcSummary> {
    let procs: Vec<&Procedure> = members
        .iter()
        .filter_map(|name| program.procedure(name))
        .collect();
    let mut local: HashMap<String, ProcSummary> = procs
        .iter()
        .filter_map(|p| {
            types
                .proc(&p.name)
                .map(|sig| (p.name.clone(), initial_summary(&p.name, sig)))
        })
        .collect();
    let derived_maps: HashMap<String, BTreeMap<String, BTreeSet<String>>> = procs
        .iter()
        .map(|p| (p.name.clone(), derived_from(p, types)))
        .collect();

    // Iterate the component until stable (the lattice has height ≤ 2 per
    // formal, so this converges in a handful of rounds).
    loop {
        let mut changed = false;
        for proc in &procs {
            let Some(sig) = types.proc(&proc.name) else {
                continue;
            };
            let derived = &derived_maps[&proc.name];
            let updates = collect_updates(proc, sig, derived, |callee| {
                local.get(callee).or_else(|| resolved.get(callee)).cloned()
            });
            let summary = local.get_mut(&proc.name).expect("seeded above");
            for (formal, mode) in updates {
                if let Some(current) = summary.handle_args.get_mut(&formal) {
                    if mode > *current {
                        *current = mode;
                        changed = true;
                    }
                }
            }
            // keep positional view in sync
            let positional: Vec<Option<ArgMode>> = sig
                .params
                .iter()
                .map(|(name, t)| {
                    if *t == Type::Handle {
                        summary.handle_args.get(name).copied()
                    } else {
                        None
                    }
                })
                .collect();
            summary.arg_modes = positional;
        }
        if !changed {
            break;
        }
    }
    local
}

/// Compute the argument-mode summaries for every procedure of `program`.
///
/// The call graph is condensed into strongly connected components which are
/// processed bottom-up; recursion (and mutual recursion) is the per-SCC
/// fixpoint of [`compute_scc_summaries`].
pub fn compute_summaries(program: &Program, types: &ProgramTypes) -> HashMap<String, ProcSummary> {
    let graph = crate::callgraph::CallGraph::of_program(program);
    let mut resolved: HashMap<String, ProcSummary> = HashMap::new();
    for component in graph.sccs() {
        let computed = compute_scc_summaries(program, types, &component, &resolved);
        resolved.extend(computed);
    }
    resolved
}

#[cfg(test)]
mod tests {
    use super::*;
    use sil_lang::frontend;

    fn summaries_for(src: &str) -> HashMap<String, ProcSummary> {
        let (program, types) = frontend(src).unwrap();
        compute_summaries(&program, &types)
    }

    #[test]
    fn add_and_reverse_summaries() {
        let summaries = summaries_for(sil_lang::testsrc::ADD_AND_REVERSE);
        // add_n only writes .value fields reachable from h.
        let add_n = &summaries["add_n"];
        assert_eq!(add_n.handle_args["h"], ArgMode::ValueUpdate);
        assert!(add_n.has_update_args());
        assert!(!add_n.has_structural_update());
        // reverse rewrites .left/.right.
        let reverse = &summaries["reverse"];
        assert_eq!(reverse.handle_args["h"], ArgMode::StructUpdate);
        assert!(reverse.has_structural_update());
        assert_eq!(reverse.update_args(), vec!["h"]);
        // build has no handle parameters.
        let build = &summaries["build"];
        assert!(build.handle_args.is_empty());
        // main has no parameters at all.
        assert!(summaries["main"].handle_args.is_empty());
    }

    #[test]
    fn read_only_traversal() {
        let src = r#"
program p
procedure visit(t: handle)
  l, r: handle; x: int
begin
  if t <> nil then
  begin
    x := t.value;
    l := t.left;
    r := t.right;
    visit(l);
    visit(r)
  end
end
procedure main()
  root: handle
begin
  root := new();
  visit(root)
end
"#;
        let summaries = summaries_for(src);
        assert_eq!(summaries["visit"].handle_args["t"], ArgMode::ReadOnly);
        assert!(!summaries["visit"].has_update_args());
    }

    #[test]
    fn update_propagates_through_calls() {
        let src = r#"
program p
procedure poke(t: handle)
begin
  t.value := 1
end
procedure outer(u: handle)
  c: handle
begin
  c := u.left;
  poke(c)
end
procedure main()
  root: handle
begin
  root := new();
  outer(root)
end
"#;
        let summaries = summaries_for(src);
        assert_eq!(summaries["poke"].handle_args["t"], ArgMode::ValueUpdate);
        // outer passes a node derived from u to poke, so u is an update arg too.
        assert_eq!(summaries["outer"].handle_args["u"], ArgMode::ValueUpdate);
    }

    #[test]
    fn structural_update_propagates_through_recursion() {
        let src = r#"
program p
procedure rot(t: handle)
  l: handle
begin
  if t <> nil then
  begin
    l := t.left;
    rot(l);
    t.left := nil
  end
end
procedure main()
  root: handle
begin
  root := new();
  rot(root)
end
"#;
        let summaries = summaries_for(src);
        assert_eq!(summaries["rot"].handle_args["t"], ArgMode::StructUpdate);
    }

    #[test]
    fn mutual_recursion_stabilizes() {
        let src = r#"
program p
procedure even(t: handle)
  l: handle
begin
  if t <> nil then
  begin
    l := t.left;
    odd(l)
  end
end
procedure odd(t: handle)
  r: handle
begin
  if t <> nil then
  begin
    r := t.right;
    r.value := 0;
    even(r)
  end
end
procedure main()
  root: handle
begin
  root := new();
  even(root)
end
"#;
        let summaries = summaries_for(src);
        assert_eq!(summaries["odd"].handle_args["t"], ArgMode::ValueUpdate);
        assert_eq!(summaries["even"].handle_args["t"], ArgMode::ValueUpdate);
    }

    #[test]
    fn derived_from_tracks_loads_and_copies() {
        let (program, types) = frontend(
            r#"
program p
procedure f(a: handle; b: handle)
  x, y, z: handle
begin
  x := a.left;
  y := x;
  z := b;
  z := new()
end
procedure main() begin end
"#,
        )
        .unwrap();
        let f = program.procedure("f").unwrap();
        let derived = derived_from(f, &types);
        assert!(derived["x"].contains("a"));
        assert!(derived["y"].contains("a"));
        assert!(!derived["y"].contains("b"));
        // flow-insensitive: z keeps its association with b even though it is
        // later overwritten — conservative by design
        assert!(derived["z"].contains("b"));
        assert_eq!(derived["a"], BTreeSet::from(["a".to_string()]));
    }

    #[test]
    fn arg_mode_ordering() {
        assert!(ArgMode::StructUpdate > ArgMode::ValueUpdate);
        assert!(ArgMode::ValueUpdate > ArgMode::ReadOnly);
        assert!(ArgMode::StructUpdate.is_update() && ArgMode::StructUpdate.is_structural());
        assert!(ArgMode::ValueUpdate.is_update() && !ArgMode::ValueUpdate.is_structural());
        assert!(!ArgMode::ReadOnly.is_update());
    }
}
