//! Property tests for the log-bucketed histogram (ISSUE 6 satellite):
//! merged per-thread shards must report the same quantiles as a
//! single-threaded oracle over 10k deterministic samples, and bucket
//! boundaries must be monotone with bounded relative error (≤2× per log
//! bucket; the sub-bucketed layout is far tighter).

use rand::distributions::{Distribution, Zipf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use silobs::hist::{bucket_bounds, bucket_index, BUCKET_COUNT, SUB_BUCKETS};
use silobs::{Histogram, ShardedHistogram};
use std::sync::Arc;

const SAMPLES: usize = 10_000;
const QUANTILES: [f64; 6] = [0.10, 0.50, 0.90, 0.99, 0.999, 1.0];

/// 10k deterministic samples spanning several orders of magnitude: a mix
/// of uniform draws over exponentially sized ranges plus a Zipf-ranked
/// component, echoing the latency shapes the service records.
fn deterministic_samples(seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let zipf = Zipf::new(1000, 1.2).unwrap();
    let mut samples = Vec::with_capacity(SAMPLES);
    for i in 0..SAMPLES {
        let value = match i % 4 {
            0 => rng.gen_range(0u64..100),
            1 => rng.gen_range(100u64..10_000),
            2 => rng.gen_range(10_000u64..10_000_000),
            _ => zipf.sample(&mut rng) * 1_000,
        };
        samples.push(value);
    }
    samples
}

/// The exact quantile of a sorted sample set: the `ceil(q·n)`-th smallest.
fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as f64;
    let rank = ((q * n).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[test]
fn merged_shards_match_single_threaded_oracle() {
    for seed in [7u64, 42, 1989] {
        let samples = deterministic_samples(seed);

        // Single-threaded recording into one histogram.
        let single = Histogram::new();
        for &v in &samples {
            single.record(v);
        }

        // The same samples striped over 8 threads into per-thread shards.
        let sharded = Arc::new(ShardedHistogram::new(8));
        let chunk = samples.len() / 8;
        std::thread::scope(|scope| {
            for part in samples.chunks(chunk) {
                let sharded = sharded.clone();
                scope.spawn(move || {
                    for &v in part {
                        sharded.record(v);
                    }
                });
            }
        });

        // Merging shards is exact: the combined snapshot is identical to
        // the single-threaded one, so every quantile agrees bit-for-bit.
        let merged = sharded.snapshot();
        let reference = single.snapshot();
        assert_eq!(merged, reference, "seed {seed}: shard merge must be exact");
        for q in QUANTILES {
            assert_eq!(
                merged.quantile(q),
                reference.quantile(q),
                "seed {seed} q={q}"
            );
        }

        // And the histogram readback tracks the exact oracle within one
        // sub-bucket of relative error.
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let tolerance = 1.0 / SUB_BUCKETS as f64;
        for q in QUANTILES {
            let truth = oracle_quantile(&sorted, q);
            let got = merged.quantile(q);
            if truth < SUB_BUCKETS as u64 {
                assert_eq!(got, truth, "seed {seed} q={q}: exact region");
            } else {
                let err = got.abs_diff(truth) as f64 / truth as f64;
                assert!(
                    err <= tolerance,
                    "seed {seed} q={q}: histogram {got} vs oracle {truth} (err {err:.4})"
                );
            }
        }
        assert_eq!(merged.min(), sorted[0]);
        assert_eq!(merged.max(), *sorted.last().unwrap());
        assert_eq!(merged.count(), SAMPLES as u64);
    }
}

#[test]
fn bucket_boundaries_are_monotone_with_bounded_relative_error() {
    let mut previous_high = None;
    for index in 0..BUCKET_COUNT {
        let (low, high) = bucket_bounds(index);
        assert!(low <= high, "bucket {index} inverted");
        if let Some(prev) = previous_high {
            assert_eq!(low, prev + 1, "bucket {index} not contiguous");
            assert!(low > prev, "bucket {index} not monotone");
        } else {
            assert_eq!(low, 0);
        }
        // Relative width: a value reported from this bucket is off by at
        // most (high - low) / low < 2× — the issue's bound; the layout
        // actually guarantees ≤ 1/SUB_BUCKETS.
        if low > 0 {
            let rel = (high - low) as f64 / low as f64;
            assert!(rel < 2.0, "bucket {index} wider than 2× ({rel:.3})");
            if low >= SUB_BUCKETS as u64 {
                assert!(
                    rel <= 1.0 / SUB_BUCKETS as f64,
                    "bucket {index} wider than one sub-bucket ({rel:.4})"
                );
            }
        }
        if index + 1 == BUCKET_COUNT {
            assert_eq!(high, u64::MAX, "last bucket must reach u64::MAX");
        }
        previous_high = Some(high);
    }
}

#[test]
fn every_sample_is_covered_by_its_bucket() {
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..SAMPLES {
        let v = rng.gen_u64();
        let (low, high) = bucket_bounds(bucket_index(v));
        assert!(low <= v && v <= high, "{v} outside [{low}, {high}]");
    }
}

/// Regression test (ISSUE 7 satellite): quantiles come from log-bucket
/// midpoints, so before the observed-min/max clamp a single-value
/// histogram could report a `p50` *above the only value ever recorded*,
/// and `p999` could exceed the largest.  Every quantile must now land
/// inside the observed `[min, max]`.
#[test]
fn single_value_histogram_reports_that_value_at_every_quantile() {
    // Values chosen to sit away from bucket boundaries, where the
    // midpoint overshoot used to show.
    for value in [1u64, 99, 1_000_003, 123_456_789_123] {
        let hist = Histogram::new();
        hist.record(value);
        let snap = hist.snapshot();
        for q in QUANTILES {
            assert_eq!(
                snap.quantile(q),
                value,
                "single-value histogram must report {value} at q={q}"
            );
        }
    }
}

/// Property form of the clamp: across seeds, no quantile of a recorded
/// distribution may exceed the observed maximum or undercut the minimum.
#[test]
fn quantiles_never_leave_the_observed_range() {
    for seed in [3u64, 17, 2026] {
        let samples = deterministic_samples(seed);
        let hist = Histogram::new();
        for &v in &samples {
            hist.record(v);
        }
        let snap = hist.snapshot();
        let min = *samples.iter().min().unwrap();
        let max = *samples.iter().max().unwrap();
        for q in QUANTILES {
            let got = snap.quantile(q);
            assert!(
                (min..=max).contains(&got),
                "seed {seed} q={q}: {got} outside observed [{min}, {max}]"
            );
        }
        assert_eq!(snap.quantile(1.0), max, "seed {seed}: p100 is the max");
    }
}
