//! The process tick clock: a monotonic microsecond counter shared by every
//! tracer and histogram in the process.
//!
//! Spans recorded by independent [`crate::Tracer`]s (the server's, each
//! engine shard's) must be comparable on one timeline; anchoring them all
//! to the first call's `Instant` gives that without threading a clock
//! handle through every layer.

use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Microseconds since the first call to `ticks()` in this process.
///
/// The first call returns 0 and pins the epoch; all later calls measure
/// from it.  Monotonic, never wraps in practice (2^64 µs ≈ 585k years).
pub fn ticks() -> u64 {
    let epoch = *EPOCH.get_or_init(Instant::now);
    epoch.elapsed().as_micros() as u64
}

#[cfg(test)]
mod tests {
    use super::ticks;

    #[test]
    fn ticks_are_monotonic() {
        let a = ticks();
        let b = ticks();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let c = ticks();
        assert!(a <= b && b <= c);
        assert!(c >= a + 1_000, "2ms sleep advances at least 1000 ticks");
    }
}
