//! Log-bucketed histograms with lock-free recording and mergeable
//! per-thread shards.
//!
//! The bucket layout is HDR-style: values below [`SUB_BUCKETS`] get one
//! exact bucket each; above that, each power-of-two range (a "log bucket")
//! is subdivided into [`SUB_BUCKETS`] linear sub-buckets.  A recorded
//! value lands in a bucket whose width is at most `1/SUB_BUCKETS` of its
//! magnitude, so quantiles read back from bucket midpoints carry a bounded
//! relative error (≈3% with 16 sub-buckets) — far inside the ≤2×-per-log-
//! bucket contract.  Every `u64` has a bucket; recording is a single
//! relaxed `fetch_add` plus min/max maintenance.

use std::cell::OnceCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// log2 of [`SUB_BUCKETS`].
pub const SUB_BITS: u32 = 4;
/// Linear sub-buckets per power-of-two range.
pub const SUB_BUCKETS: usize = 1 << SUB_BITS;
/// Power-of-two ranges above the exact region: msb in `SUB_BITS..=63`.
const GROUPS: usize = 64 - SUB_BITS as usize;
/// Total buckets: the exact region plus every subdivided group.
pub const BUCKET_COUNT: usize = SUB_BUCKETS + GROUPS * SUB_BUCKETS;

/// The bucket index covering `value`.
pub fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros();
    let group = (msb - SUB_BITS) as usize; // 0-based group above the exact region
    let sub = ((value >> (msb - SUB_BITS)) & (SUB_BUCKETS as u64 - 1)) as usize;
    SUB_BUCKETS + group * SUB_BUCKETS + sub
}

/// The inclusive `[low, high]` range of values that land in `index`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < BUCKET_COUNT, "bucket index out of range");
    if index < SUB_BUCKETS {
        return (index as u64, index as u64);
    }
    let group = (index - SUB_BUCKETS) / SUB_BUCKETS;
    let sub = ((index - SUB_BUCKETS) % SUB_BUCKETS) as u64;
    let msb = group as u32 + SUB_BITS;
    let width = 1u64 << (msb - SUB_BITS);
    let low = (1u64 << msb) + sub * width;
    (low, low + (width - 1))
}

/// The representative value reported for `index`: the bucket midpoint.
fn bucket_mid(index: usize) -> u64 {
    let (low, high) = bucket_bounds(index);
    low + (high - low) / 2
}

/// A lock-free log-bucketed histogram of `u64` samples.
///
/// Unit-agnostic; by convention this workspace records microseconds.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        let buckets = (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample.  Lock-free: one relaxed add per field touched.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the distribution.  Concurrent recording is
    /// fine; the snapshot is internally consistent to within the samples
    /// in flight at the moment of the copy.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = buckets.iter().sum();
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A non-atomic copy of a [`Histogram`], mergeable and queryable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot::empty()
    }
}

impl HistogramSnapshot {
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: vec![0; BUCKET_COUNT],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    /// Fold another snapshot into this one.  Merging per-thread shards
    /// this way yields exactly the distribution a single shared histogram
    /// would have recorded — bucket counts are plain sums.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        debug_assert_eq!(self.buckets.len(), other.buckets.len());
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The distribution of samples recorded between `earlier` and `self`
    /// (two cumulative snapshots of the same histogram): per-bucket
    /// subtraction, which is exact because buckets only ever grow.  The
    /// interval's true min/max are not recoverable from cumulative
    /// snapshots, so they are reconstructed from the outermost nonempty
    /// delta buckets' bounds — within one bucket width of the truth,
    /// the same error budget quantiles already carry.  This is what turns
    /// a flight recorder's cumulative samples into per-interval latency
    /// quantiles.
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        debug_assert_eq!(self.buckets.len(), earlier.buckets.len());
        let mut out = HistogramSnapshot::empty();
        let mut count = 0u64;
        for (index, (now, then)) in self.buckets.iter().zip(&earlier.buckets).enumerate() {
            let n = now.saturating_sub(*then);
            if n == 0 {
                continue;
            }
            out.buckets[index] = n;
            count += n;
            let (low, high) = bucket_bounds(index);
            out.min = out.min.min(low);
            out.max = out.max.max(high.min(self.max));
        }
        out.count = count;
        out.sum = self.sum.saturating_sub(earlier.sum);
        if count > 0 {
            out.min = out.min.max(self.min);
        }
        out
    }

    /// The value at quantile `q` in `[0, 1]`: the midpoint of the bucket
    /// holding the `ceil(q·count)`-th smallest sample, clamped to the
    /// exact observed `[min, max]`.  Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_mid(index).clamp(self.min, self.max);
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Round-robin shard assignment: each thread picks a slot once, on first
/// use, and keeps it for life.  One process-wide sequence is shared by
/// every [`ShardedHistogram`]; a shard index is the slot modulo the shard
/// count, so threads spread evenly without any per-histogram state.
static NEXT_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_SLOT: OnceCell<usize> = const { OnceCell::new() };
}

fn thread_slot() -> usize {
    THREAD_SLOT.with(|slot| *slot.get_or_init(|| NEXT_SLOT.fetch_add(1, Ordering::Relaxed)))
}

/// A histogram striped across per-thread shards to keep recording
/// contention-free; [`ShardedHistogram::snapshot`] merges the shards into
/// one distribution.
#[derive(Debug)]
pub struct ShardedHistogram {
    shards: Vec<Histogram>,
}

impl Default for ShardedHistogram {
    fn default() -> ShardedHistogram {
        ShardedHistogram::new(16)
    }
}

impl ShardedHistogram {
    /// A histogram striped over `shards` (at least 1) shards.
    pub fn new(shards: usize) -> ShardedHistogram {
        let shards = shards.max(1);
        ShardedHistogram {
            shards: (0..shards).map(|_| Histogram::new()).collect(),
        }
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Record into the calling thread's shard.
    pub fn record(&self, value: u64) {
        self.shards[thread_slot() % self.shards.len()].record(value);
    }

    pub fn count(&self) -> u64 {
        self.shards.iter().map(Histogram::count).sum()
    }

    /// Merge every shard into one [`HistogramSnapshot`].
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut merged = HistogramSnapshot::empty();
        for shard in &self.shards {
            merged.merge(&shard.snapshot());
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..SUB_BUCKETS as u64 {
            h.record(v);
            assert_eq!(bucket_bounds(bucket_index(v)), (v, v));
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), SUB_BUCKETS as u64);
        assert_eq!(snap.min(), 0);
        assert_eq!(snap.max(), SUB_BUCKETS as u64 - 1);
    }

    #[test]
    fn every_value_lands_inside_its_bucket() {
        let probes = [
            0,
            1,
            15,
            16,
            17,
            31,
            32,
            100,
            1_000,
            65_535,
            65_536,
            1 << 40,
            (1 << 40) + 12_345,
            u64::MAX - 1,
            u64::MAX,
        ];
        for v in probes {
            let (low, high) = bucket_bounds(bucket_index(v));
            assert!(low <= v && v <= high, "{v} outside [{low}, {high}]");
        }
    }

    #[test]
    fn bucket_bounds_tile_the_u64_line() {
        let mut expected_low = 0u64;
        for index in 0..BUCKET_COUNT {
            let (low, high) = bucket_bounds(index);
            assert_eq!(low, expected_low, "gap or overlap at bucket {index}");
            assert!(high >= low);
            if index + 1 < BUCKET_COUNT {
                expected_low = high + 1;
            } else {
                assert_eq!(high, u64::MAX);
            }
        }
    }

    #[test]
    fn quantiles_of_a_uniform_ramp() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 1000);
        // Midpoint readback is within one sub-bucket (≤6.25%) of truth.
        for (q, truth) in [(0.50, 500u64), (0.90, 900), (0.99, 990), (0.999, 999)] {
            let got = snap.quantile(q);
            let err = got.abs_diff(truth) as f64 / truth as f64;
            assert!(err <= 1.0 / SUB_BUCKETS as f64, "q={q}: {got} vs {truth}");
        }
        assert_eq!(snap.quantile(0.0), 1);
        assert_eq!(snap.quantile(1.0), 1000);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let snap = Histogram::new().snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.p50(), 0);
        assert_eq!(snap.min(), 0);
        assert_eq!(snap.max(), 0);
        assert_eq!(snap.mean(), 0.0);
    }

    #[test]
    fn merge_is_addition() {
        let a = Histogram::new();
        let b = Histogram::new();
        let whole = Histogram::new();
        for v in 0..500u64 {
            a.record(v * 3);
            whole.record(v * 3);
        }
        for v in 0..500u64 {
            b.record(v * 7 + 1);
            whole.record(v * 7 + 1);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, whole.snapshot());
    }

    #[test]
    fn delta_recovers_the_interval_distribution() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let earlier = h.snapshot();
        for v in 10_001..=11_000u64 {
            h.record(v);
        }
        let interval = h.snapshot().delta(&earlier);
        assert_eq!(interval.count(), 1000);
        assert_eq!(interval.sum(), (10_001..=11_000u64).sum::<u64>());
        // The interval's quantiles reflect only the new samples, not the
        // cumulative distribution (whose p50 would sit near 10 000 too,
        // but whose min is 1).
        // Reconstructed bounds are within one bucket width of the truth —
        // far above the cumulative min of 1, no higher than the true max.
        assert!(interval.min() >= 9_000, "min = {}", interval.min());
        assert!(interval.max() <= 11_000, "max = {}", interval.max());
        let p50 = interval.p50();
        assert!((10_001..=11_100).contains(&p50), "interval p50 = {p50}");
        // No new samples → an empty interval.
        let same = h.snapshot().delta(&h.snapshot());
        assert!(same.is_empty());
        assert_eq!(same.p99(), 0);
    }

    #[test]
    fn sharded_histogram_spreads_threads_and_merges() {
        let h = std::sync::Arc::new(ShardedHistogram::new(4));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let h = h.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    h.record(t * 1000 + i);
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 8000);
        assert_eq!(snap.min(), 0);
        assert_eq!(snap.max(), 7999);
    }
}
