//! The flight recorder: a bounded ring of periodic metrics samples.
//!
//! A point-in-time `metrics` snapshot answers "what has happened since
//! boot"; it cannot answer "what is happening *now*" — req/s, queue-depth
//! trends, the p99 of the last second.  The flight recorder closes that
//! gap: a background sampler feeds it one [`RawMetrics`] read per tick
//! (default 1 Hz), and it retains the most recent `capacity` samples
//! (default 256 — about four minutes of history) as [`HistorySample`]s.
//!
//! Counters and gauges are stored cumulative — consumers diff adjacent
//! samples to get rates, and a monotone counter series is the recorder's
//! own consistency check.  Histograms are stored as **interval** quantile
//! summaries: each sample keeps the previous tick's full bucket array and
//! subtracts it ([`crate::HistogramSnapshot::delta`]), so a sample's p99
//! is the p99 of that tick alone, not an ever-flattening lifetime
//! quantile.  This is the sustained-history substrate the ROADMAP's
//! autoscaling loop reads (p90 of sampled queue depth over a window).

use crate::metrics::{MetricsSnapshot, RawMetrics};
use std::collections::VecDeque;
use std::sync::Mutex;

/// One recorder tick: when it was taken (process ticks, µs — see
/// [`crate::ticks`]) and the metrics view at that moment (cumulative
/// counters/gauges, interval histogram summaries).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistorySample {
    pub at_us: u64,
    pub metrics: MetricsSnapshot,
}

#[derive(Debug, Default)]
struct RecorderState {
    samples: VecDeque<HistorySample>,
    /// The previous tick's raw read, kept with full histogram buckets so
    /// the next tick can compute exact interval deltas.
    last_raw: Option<RawMetrics>,
}

/// A bounded ring of metrics samples; see the module docs.
#[derive(Debug)]
pub struct FlightRecorder {
    state: Mutex<RecorderState>,
    capacity: usize,
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::new(256)
    }
}

impl FlightRecorder {
    /// A recorder retaining at most `capacity` (at least 2 — one sample
    /// has no deltas) recent samples.
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            state: Mutex::new(RecorderState::default()),
            capacity: capacity.max(2),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Ingest one raw read taken at `at_us`, evicting the oldest sample
    /// when full.  Histograms are summarized against the previous tick's
    /// buckets; the first tick summarizes its lifetime distribution.
    pub fn sample_at(&self, at_us: u64, raw: RawMetrics) {
        let mut state = self.state.lock().unwrap();
        let metrics = match &state.last_raw {
            Some(last) => raw.summarize_interval(last),
            None => raw.summarize(),
        };
        if state.samples.len() == self.capacity {
            state.samples.pop_front();
        }
        state.samples.push_back(HistorySample { at_us, metrics });
        state.last_raw = Some(raw);
    }

    /// Ingest one raw read stamped with the current tick clock.
    pub fn sample(&self, raw: RawMetrics) {
        self.sample_at(crate::ticks(), raw);
    }

    /// The retained samples, oldest first.
    pub fn history(&self) -> Vec<HistorySample> {
        self.state.lock().unwrap().samples.iter().cloned().collect()
    }

    pub fn len(&self) -> usize {
        self.state.lock().unwrap().samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;
    use std::sync::Arc;

    #[test]
    fn ring_is_bounded_and_keeps_the_newest() {
        let recorder = FlightRecorder::new(3);
        let registry = Registry::new();
        let requests = registry.counter("server.requests");
        for tick in 1..=5u64 {
            requests.incr();
            recorder.sample_at(tick * 1000, registry.collect());
        }
        let history = recorder.history();
        assert_eq!(history.len(), 3);
        assert_eq!(
            history.iter().map(|s| s.at_us).collect::<Vec<_>>(),
            vec![3000, 4000, 5000]
        );
        assert_eq!(history[2].metrics.counter("server.requests"), Some(5));
    }

    #[test]
    fn histogram_samples_are_intervals_not_lifetimes() {
        let recorder = FlightRecorder::new(8);
        let registry = Registry::new();
        let hist = registry.histogram("server.serve_us");
        for _ in 0..100 {
            hist.record(10);
        }
        recorder.sample_at(1000, registry.collect());
        for _ in 0..100 {
            hist.record(10_000);
        }
        recorder.sample_at(2000, registry.collect());
        let history = recorder.history();
        let first = history[0].metrics.histogram("server.serve_us").unwrap();
        let second = history[1].metrics.histogram("server.serve_us").unwrap();
        assert_eq!(first.count, 100);
        assert_eq!(second.count, 100, "interval count, not cumulative 200");
        assert!(second.p50 > 5_000, "interval p50 = {}", second.p50);
        assert!(first.p50 <= 16, "first-tick p50 = {}", first.p50);
    }

    /// Satellite coverage: hammer the instruments from several threads
    /// while sampling runs — no panic, and the counter series every
    /// consumer diffs stays monotone.
    #[test]
    fn concurrent_updates_during_sampling_stay_monotone() {
        let recorder = Arc::new(FlightRecorder::new(64));
        let registry = Arc::new(Registry::new());
        let mut writers = Vec::new();
        for t in 0..4u64 {
            let registry = registry.clone();
            writers.push(std::thread::spawn(move || {
                let requests = registry.counter("server.requests");
                let depth = registry.gauge("server.queue_depth");
                let hist = registry.histogram("server.serve_us");
                for i in 0..5_000u64 {
                    requests.incr();
                    depth.set((i % 7) as i64);
                    hist.record(t * 100 + i % 97);
                }
            }));
        }
        let sampler = {
            let recorder = recorder.clone();
            let registry = registry.clone();
            std::thread::spawn(move || {
                for tick in 0..200u64 {
                    recorder.sample_at(tick, registry.collect());
                }
            })
        };
        for writer in writers {
            writer.join().unwrap();
        }
        sampler.join().unwrap();
        recorder.sample(registry.collect());

        let history = recorder.history();
        assert!(history.len() >= 2);
        let series: Vec<u64> = history
            .iter()
            .filter_map(|s| s.metrics.counter("server.requests"))
            .collect();
        assert_eq!(series.len(), history.len());
        assert!(
            series.windows(2).all(|w| w[0] <= w[1]),
            "counter series must be monotone: {series:?}"
        );
        assert_eq!(*series.last().unwrap(), 20_000);
    }
}
