//! Dependency-free observability for the SIL analysis service.
//!
//! Three pieces, all safe to call from hot paths:
//!
//! - **Metrics** ([`Registry`], [`Counter`], [`Gauge`],
//!   [`ShardedHistogram`]): named atomic instruments.  Histograms are
//!   log-bucketed (HDR-style: power-of-two major buckets subdivided into
//!   [`hist::SUB_BUCKETS`] linear sub-buckets) so any `u64` value is
//!   recorded lock-free with bounded relative error, and per-thread shards
//!   merge into one distribution for quantile extraction
//!   (p50/p90/p99/p999).
//! - **Tracing** ([`Tracer`], [`SpanRecord`]): per-request ids minted at
//!   accept, span records captured into a bounded ring buffer with
//!   tick-based timestamps (microseconds since process start, see
//!   [`ticks`]), dumpable as ndjson.  The current request context — its
//!   id plus a propagated trace id and parent span id — travels through a
//!   thread-local ([`with_context`] / [`current_context`]) so layers that
//!   never see the wire can still stamp their spans, and spans adopted
//!   from other daemons assemble into one cross-daemon trace tree.
//! - **Snapshots** ([`RawMetrics`], [`MetricsSnapshot`]): a registry
//!   collects into raw (mergeable) form; summarizing produces the compact
//!   name→value / name→quantile shape that crosses the wire.
//! - **Flight recorder** ([`FlightRecorder`], [`HistorySample`]): a
//!   bounded ring of periodic metrics samples — cumulative counters and
//!   gauges plus per-interval histogram quantiles — giving every consumer
//!   rates and "p99 of the last tick" instead of lifetime aggregates.
//!
//! The crate deliberately has no dependencies — it is linked into every
//! layer from the fixpoint engine to the event loop, and must never drag
//! I/O or allocation policy into either.

mod clock;
pub mod hist;
mod metrics;
mod recorder;
mod trace;

pub use clock::ticks;
pub use hist::{Histogram, HistogramSnapshot, ShardedHistogram};
pub use metrics::{Counter, Gauge, HistogramSummary, MetricsSnapshot, RawMetrics, Registry};
pub use recorder::{FlightRecorder, HistorySample};
pub use trace::{
    current_context, current_request, mint_span_id, mint_trace_id, with_context, with_context_opt,
    with_request, SpanRecord, SpanTimer, TraceContext, Tracer,
};
