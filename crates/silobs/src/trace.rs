//! Lightweight structured tracing: per-request span records in a bounded
//! ring buffer, stitched into **trace trees** that can cross daemons.
//!
//! A request id is minted once where the request enters the process (the
//! server's line framing, or the engine itself for in-process use) and
//! propagated through a thread-local ([`with_request`]) — both serving
//! strategies dispatch to the engine synchronously on the handling
//! thread, so the thread-local is exactly as wide as the request.  Layers
//! record named spans against the current context; the ring keeps the
//! most recent spans and drops the oldest (counted in
//! [`Tracer::dropped_spans`]), so tracing is always on and never grows
//! without bound.
//!
//! On top of the flat ring, spans carry three tree-building fields:
//!
//! - a **trace id**, minted once per causal story ([`mint_trace_id`],
//!   seeded per process so ids from different daemons do not collide) and
//!   forwarded across the wire, so every hop of a request — shard
//!   dispatch, peer fetch, the remote daemon's own serving — lands in the
//!   same tree;
//! - a **span id** minted per span; and
//! - a **parent** span id: [`Tracer::start`] publishes its freshly minted
//!   span id as the thread-local parent for its scope, so nested
//!   [`SpanTimer`]s parent naturally and a remote callee can parent its
//!   root under the caller's in-flight span.
//!
//! Spans fetched back from another daemon are [`Tracer::adopt`]ed into
//! the local ring with their `origin` (the remote daemon's listen
//! address) preserved, so one dump renders the whole cross-daemon tree.
//! Requests slower than a configured threshold can be
//! [`Tracer::capture_slow`]ed into a dedicated bounded buffer that the
//! main ring's churn never evicts.

use crate::clock::ticks;
use crate::metrics::RawMetrics;
use std::borrow::Cow;
use std::cell::Cell;
use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// The per-thread trace context: which request this thread is serving,
/// which trace (if any) it belongs to, and the span id new spans should
/// parent under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The daemon-local request id; 0 never occurs in a live context.
    pub request: u64,
    /// The cluster-wide trace id; 0 means "untraced" (no tree).
    pub trace: u64,
    /// The span id new spans parent under; 0 means "root".
    pub parent: u64,
}

/// One completed span: a named interval attributed to a request, with
/// optional tree coordinates.  Timestamps are process ticks
/// (microseconds, see [`crate::ticks`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The request this span belongs to; 0 means "no request context".
    pub request: u64,
    /// Span name (`parse`, `fixpoint`, `queue-wait`, ...).  Borrowed for
    /// locally recorded spans; owned for spans adopted off the wire.
    pub name: Cow<'static, str>,
    pub start_us: u64,
    pub end_us: u64,
    /// The trace this span belongs to; 0 means untraced.
    pub trace: u64,
    /// This span's own id (unique per process seed; 0 never occurs for
    /// spans recorded through this module).
    pub span_id: u64,
    /// The parent span id; 0 means this span is a root of its trace.
    pub parent: u64,
    /// Which daemon recorded the span.  `None` means "this tracer" and is
    /// resolved to the tracer's origin on snapshot; `Some` is preserved
    /// verbatim for spans adopted from a remote daemon.
    pub origin: Option<Arc<str>>,
}

impl SpanRecord {
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

thread_local! {
    static CURRENT: Cell<Option<TraceContext>> = const { Cell::new(None) };
}

/// Run `f` with `id` as the current request id on this thread (untraced),
/// restoring the previous context (supporting nesting) on exit.
pub fn with_request<R>(id: u64, f: impl FnOnce() -> R) -> R {
    with_context(
        TraceContext {
            request: id,
            trace: 0,
            parent: 0,
        },
        f,
    )
}

/// Run `f` under `ctx` on this thread, restoring the previous context
/// (supporting nesting) on exit.
pub fn with_context<R>(ctx: TraceContext, f: impl FnOnce() -> R) -> R {
    let previous = CURRENT.with(|current| current.replace(Some(ctx)));
    let result = f();
    CURRENT.with(|current| current.set(previous));
    result
}

/// [`with_context`] when the context may be absent — the shape needed to
/// forward a captured context into a scoped worker thread.
pub fn with_context_opt<R>(ctx: Option<TraceContext>, f: impl FnOnce() -> R) -> R {
    match ctx {
        Some(ctx) => with_context(ctx, f),
        None => f(),
    }
}

/// The context set by the innermost [`with_context`] on this thread.
pub fn current_context() -> Option<TraceContext> {
    CURRENT.with(Cell::get)
}

/// The request id set by the innermost [`with_request`]/[`with_context`]
/// on this thread.
pub fn current_request() -> Option<u64> {
    current_context().map(|ctx| ctx.request)
}

/// Mint a process-unique span id.  The counter is seeded from the pid and
/// the wall clock so two daemons' id ranges are disjoint in practice —
/// a trace assembled from several daemons never sees a collision.
pub fn mint_span_id() -> u64 {
    static NEXT: OnceLock<AtomicU64> = OnceLock::new();
    let next = NEXT.get_or_init(|| AtomicU64::new(seed()));
    loop {
        let id = next.fetch_add(1, Ordering::Relaxed);
        if id != 0 {
            return id;
        }
    }
}

/// Mint a cluster-unique trace id (same id space as span ids).
pub fn mint_trace_id() -> u64 {
    mint_span_id()
}

/// splitmix64 of (pid, now): a well-spread 64-bit starting point.
fn seed() -> u64 {
    let pid = std::process::id() as u64;
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let mut z = pid.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ now;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// How many slow-request captures the dedicated buffer retains.
const SLOW_CAPTURES: usize = 32;

/// A bounded ring of [`SpanRecord`]s plus the request-id mint, a
/// dedicated buffer of slow-request captures, and eviction counters.
#[derive(Debug)]
pub struct Tracer {
    ring: Mutex<VecDeque<SpanRecord>>,
    capacity: usize,
    slow: Mutex<VecDeque<Vec<SpanRecord>>>,
    next_id: AtomicU64,
    dropped: AtomicU64,
    slow_captures: AtomicU64,
    origin: OnceLock<Arc<str>>,
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::new(4096)
    }
}

impl Tracer {
    /// A tracer keeping at most `capacity` (at least 1) recent spans.
    pub fn new(capacity: usize) -> Tracer {
        Tracer {
            ring: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            slow: Mutex::new(VecDeque::new()),
            next_id: AtomicU64::new(1),
            dropped: AtomicU64::new(0),
            slow_captures: AtomicU64::new(0),
            origin: OnceLock::new(),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Name this tracer's daemon (its listen address).  First call wins;
    /// before any call the origin is `"in-process"`.
    pub fn set_origin(&self, origin: &str) {
        let _ = self.origin.set(Arc::from(origin));
    }

    /// The identity stamped on this tracer's own spans.
    pub fn origin(&self) -> Arc<str> {
        self.origin.get_or_init(|| Arc::from("in-process")).clone()
    }

    /// Mint a fresh request id (1, 2, 3, ... — never 0).
    pub fn mint(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Spans evicted from the ring to make room — the count behind the
    /// `trace.dropped_spans` metric.
    pub fn dropped_spans(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Slow requests captured into the dedicated buffer.
    pub fn slow_captures(&self) -> u64 {
        self.slow_captures.load(Ordering::Relaxed)
    }

    /// Export this tracer's eviction counters into a raw metrics read.
    /// Counters sum on name collision, so a server and its service each
    /// exporting their own tracer yields the daemon-wide totals.
    pub fn export_metrics(&self, raw: &mut RawMetrics) {
        raw.push_counter("trace.dropped_spans", self.dropped_spans());
        raw.push_counter("trace.slow_captures", self.slow_captures());
    }

    /// Record a completed span with no tree coordinates (the shape of
    /// spans minted before any context exists, like async queue-wait).
    pub fn record(&self, request: u64, name: &'static str, start_us: u64, end_us: u64) {
        self.record_span(SpanRecord {
            request,
            name: Cow::Borrowed(name),
            start_us,
            end_us,
            trace: 0,
            span_id: mint_span_id(),
            parent: 0,
            origin: None,
        });
    }

    /// Record a completed span, evicting (and counting) the oldest record
    /// when full.
    pub fn record_span(&self, span: SpanRecord) {
        let mut ring = self.ring.lock().unwrap();
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(span);
    }

    /// Start a span attributed to the current context (or request 0); it
    /// records itself when the returned guard drops.  For the guard's
    /// lifetime the thread-local parent is this span's id, so nested
    /// spans — including spans recorded by a *remote* daemon the thread
    /// calls into — become its children.
    pub fn start(&self, name: &'static str) -> SpanTimer<'_> {
        let ctx = current_context();
        let span_id = mint_span_id();
        if let Some(ctx) = ctx {
            CURRENT.with(|current| {
                current.set(Some(TraceContext {
                    parent: span_id,
                    ..ctx
                }))
            });
        }
        SpanTimer {
            tracer: self,
            name,
            ctx,
            span_id,
            start_us: ticks(),
        }
    }

    /// Copy `spans` (a slow request's tree, gathered across tracers) into
    /// the dedicated slow buffer, which holds the 32 most recent captures
    /// regardless of main-ring churn.
    pub fn capture_slow(&self, spans: Vec<SpanRecord>) {
        if spans.is_empty() {
            return;
        }
        let mut slow = self.slow.lock().unwrap();
        if slow.len() == SLOW_CAPTURES {
            slow.pop_front();
        }
        slow.push_back(spans);
        self.slow_captures.fetch_add(1, Ordering::Relaxed);
    }

    /// Adopt spans fetched from another daemon: records with an ill-formed
    /// name or origin are dropped, and span ids already present are
    /// skipped so re-fetching a hop never duplicates its subtree.
    pub fn adopt(&self, spans: Vec<SpanRecord>) {
        let mut seen: HashSet<u64> = {
            let ring = self.ring.lock().unwrap();
            ring.iter().map(|s| s.span_id).collect()
        };
        for span in spans {
            if span.span_id == 0 || !seen.insert(span.span_id) {
                continue;
            }
            if !wire_safe(&span.name) || !span.origin.as_deref().is_some_and(wire_safe) {
                continue;
            }
            self.record_span(span);
        }
    }

    /// The retained ring spans, oldest first, origins resolved.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let origin = self.origin();
        self.ring
            .lock()
            .unwrap()
            .iter()
            .map(|span| resolve(span, &origin))
            .collect()
    }

    /// Ring spans plus slow captures, deduplicated by span id — the view
    /// a trace dump serves, where a captured slow request outlives its
    /// ring eviction.
    pub fn snapshot_all(&self) -> Vec<SpanRecord> {
        let mut spans = self.snapshot();
        let mut seen: HashSet<u64> = spans.iter().map(|s| s.span_id).collect();
        let origin = self.origin();
        let slow = self.slow.lock().unwrap();
        for capture in slow.iter() {
            for span in capture {
                if seen.insert(span.span_id) {
                    spans.push(resolve(span, &origin));
                }
            }
        }
        spans
    }

    /// Every retained span belonging to `trace`, plus untraced spans
    /// attributed to `request` (async queue-wait is recorded before the
    /// wire header is parsed, so it links by request id only).  Origins
    /// resolved — this is the shape piggybacked to a remote caller.
    pub fn spans_for(&self, trace: u64, request: u64) -> Vec<SpanRecord> {
        let origin = self.origin();
        self.ring
            .lock()
            .unwrap()
            .iter()
            .filter(|span| {
                (trace != 0 && span.trace == trace) || (span.trace == 0 && span.request == request)
            })
            .map(|span| resolve(span, &origin))
            .collect()
    }

    /// Render spans as ndjson, one object per line (trailing newline
    /// included when nonempty).  Span names and origins are identifiers
    /// and addresses (adoption rejects anything else), so no JSON
    /// escaping is required.  Untraced spans keep the historical field
    /// set plus `origin`; traced spans add their tree coordinates as hex.
    pub fn to_ndjson(spans: &[SpanRecord]) -> String {
        let mut out = String::new();
        for span in spans {
            out.push_str(&format!(
                "{{\"request\":{},\"span\":\"{}\",\"start_us\":{},\"end_us\":{},\"duration_us\":{}",
                span.request,
                span.name,
                span.start_us,
                span.end_us,
                span.duration_us()
            ));
            if span.trace != 0 {
                out.push_str(&format!(
                    ",\"trace\":\"{:x}\",\"span_id\":\"{:x}\",\"parent\":\"{:x}\"",
                    span.trace, span.span_id, span.parent
                ));
            }
            out.push_str(&format!(
                ",\"origin\":\"{}\"}}\n",
                span.origin.as_deref().unwrap_or("in-process")
            ));
        }
        out
    }
}

fn resolve(span: &SpanRecord, origin: &Arc<str>) -> SpanRecord {
    let mut span = span.clone();
    if span.origin.is_none() {
        span.origin = Some(origin.clone());
    }
    span
}

/// Safe to embed unescaped in JSON and ndjson: span names (`peer-fetch`)
/// and daemon addresses (`unix:/tmp/a.sock`, `127.0.0.1:4400`).
fn wire_safe(text: &str) -> bool {
    !text.is_empty()
        && text.len() <= 128
        && text
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.' | ':' | '/'))
}

/// Drop guard returned by [`Tracer::start`]; records the span on drop and
/// restores the thread-local parent it displaced.
#[derive(Debug)]
pub struct SpanTimer<'a> {
    tracer: &'a Tracer,
    name: &'static str,
    ctx: Option<TraceContext>,
    span_id: u64,
    start_us: u64,
}

impl SpanTimer<'_> {
    /// This span's id — what a cross-daemon callee's root will name as
    /// its parent.
    pub fn span_id(&self) -> u64 {
        self.span_id
    }
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        let end_us = ticks();
        let (request, trace, parent) = match self.ctx {
            Some(ctx) => {
                CURRENT.with(|current| current.set(Some(ctx)));
                (ctx.request, ctx.trace, ctx.parent)
            }
            None => (0, 0, 0),
        };
        self.tracer.record_span(SpanRecord {
            request,
            name: Cow::Borrowed(self.name),
            start_us: self.start_us,
            end_us,
            trace,
            span_id: self.span_id,
            parent,
            origin: None,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mint_never_returns_zero_and_increments() {
        let tracer = Tracer::new(8);
        assert_eq!(tracer.mint(), 1);
        assert_eq!(tracer.mint(), 2);
        assert_eq!(tracer.mint(), 3);
    }

    #[test]
    fn ring_is_bounded_and_counts_dropped_spans() {
        let tracer = Tracer::new(3);
        for i in 0..5u64 {
            tracer.record(i, "parse", i * 10, i * 10 + 1);
        }
        let spans = tracer.snapshot();
        assert_eq!(spans.len(), 3);
        assert_eq!(
            spans.iter().map(|s| s.request).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert_eq!(tracer.dropped_spans(), 2);
        let mut raw = RawMetrics::new();
        tracer.export_metrics(&mut raw);
        let snap = raw.summarize();
        assert_eq!(snap.counter("trace.dropped_spans"), Some(2));
        assert_eq!(snap.counter("trace.slow_captures"), Some(0));
    }

    #[test]
    fn request_context_nests_and_restores() {
        assert_eq!(current_request(), None);
        let inner = with_request(7, || {
            let outer = current_request();
            let nested = with_request(9, current_request);
            (outer, nested, current_request())
        });
        assert_eq!(inner, (Some(7), Some(9), Some(7)));
        assert_eq!(current_request(), None);
    }

    #[test]
    fn span_timer_records_on_drop_with_context() {
        let tracer = Tracer::new(8);
        with_request(42, || {
            let _span = tracer.start("fixpoint");
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        let spans = tracer.snapshot();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].request, 42);
        assert_eq!(spans[0].name, "fixpoint");
        assert!(spans[0].end_us >= spans[0].start_us);
    }

    #[test]
    fn nested_timers_parent_under_the_enclosing_span() {
        let tracer = Tracer::new(8);
        let ctx = TraceContext {
            request: 1,
            trace: mint_trace_id(),
            parent: 0,
        };
        with_context(ctx, || {
            let outer = tracer.start("serve");
            let outer_id = outer.span_id();
            {
                let inner = tracer.start("fixpoint");
                assert_eq!(current_context().unwrap().parent, inner.span_id());
            }
            // Dropping the inner timer restores the outer span as parent.
            assert_eq!(current_context().unwrap().parent, outer_id);
            drop(outer);
            assert_eq!(current_context().unwrap().parent, 0);
        });
        let spans = tracer.snapshot();
        assert_eq!(spans.len(), 2);
        let inner = spans.iter().find(|s| s.name == "fixpoint").unwrap();
        let outer = spans.iter().find(|s| s.name == "serve").unwrap();
        assert_eq!(inner.parent, outer.span_id);
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.trace, ctx.trace);
    }

    #[test]
    fn slow_captures_survive_ring_eviction() {
        let tracer = Tracer::new(2);
        tracer.record(1, "fixpoint", 0, 9000);
        let capture = tracer.spans_for(0, 1);
        assert_eq!(capture.len(), 1);
        tracer.capture_slow(capture);
        assert_eq!(tracer.slow_captures(), 1);
        // Churn the ring until the original span is gone.
        for i in 0..4u64 {
            tracer.record(50 + i, "parse", 0, 1);
        }
        assert!(tracer.snapshot().iter().all(|s| s.name != "fixpoint"));
        let all = tracer.snapshot_all();
        assert!(all.iter().any(|s| s.name == "fixpoint"));
        // No duplicates when the span is still in the ring.
        tracer.record(9, "encode", 0, 1);
        tracer.capture_slow(tracer.spans_for(0, 9));
        let all = tracer.snapshot_all();
        assert_eq!(all.iter().filter(|s| s.name == "encode").count(), 1);
    }

    #[test]
    fn adopt_skips_duplicates_and_unsafe_records() {
        let tracer = Tracer::new(8);
        let span = SpanRecord {
            request: 3,
            name: Cow::Owned("peer-serve".to_string()),
            start_us: 5,
            end_us: 9,
            trace: 7,
            span_id: 11,
            parent: 2,
            origin: Some(Arc::from("unix:/tmp/peer.sock")),
        };
        tracer.adopt(vec![span.clone(), span.clone()]);
        assert_eq!(tracer.snapshot().len(), 1);
        tracer.adopt(vec![span.clone()]);
        assert_eq!(tracer.snapshot().len(), 1, "re-adoption must dedup");
        let hostile = SpanRecord {
            name: Cow::Owned("bad\"name".to_string()),
            span_id: 12,
            ..span.clone()
        };
        let unoriginated = SpanRecord {
            origin: None,
            span_id: 13,
            ..span
        };
        tracer.adopt(vec![hostile, unoriginated]);
        assert_eq!(tracer.snapshot().len(), 1);
    }

    #[test]
    fn ndjson_is_one_object_per_line() {
        let tracer = Tracer::new(8);
        tracer.record(1, "parse", 10, 25);
        tracer.record(1, "fixpoint", 26, 100);
        let dump = Tracer::to_ndjson(&tracer.snapshot());
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"request\":1,\"span\":\"parse\",\"start_us\":10,\"end_us\":25,\
             \"duration_us\":15,\"origin\":\"in-process\"}"
        );
        assert!(lines[1].contains("\"span\":\"fixpoint\""));
    }

    #[test]
    fn ndjson_traced_spans_carry_tree_coordinates_and_origin() {
        let tracer = Tracer::new(8);
        tracer.set_origin("unix:/tmp/a.sock");
        tracer.record_span(SpanRecord {
            request: 2,
            name: Cow::Borrowed("serve"),
            start_us: 4,
            end_us: 10,
            trace: 0x2a,
            span_id: 0x1f,
            parent: 0x10,
            origin: None,
        });
        let dump = Tracer::to_ndjson(&tracer.snapshot());
        assert_eq!(
            dump,
            "{\"request\":2,\"span\":\"serve\",\"start_us\":4,\"end_us\":10,\
             \"duration_us\":6,\"trace\":\"2a\",\"span_id\":\"1f\",\"parent\":\"10\",\
             \"origin\":\"unix:/tmp/a.sock\"}\n"
        );
    }
}
