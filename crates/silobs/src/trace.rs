//! Lightweight structured tracing: per-request span records in a bounded
//! ring buffer.
//!
//! A request id is minted once where the request enters the process (the
//! server's line framing, or the engine itself for in-process use) and
//! propagated through a thread-local ([`with_request`]) — both serving
//! strategies dispatch to the engine synchronously on the handling
//! thread, so the thread-local is exactly as wide as the request.  Layers
//! record named spans against [`current_request`]; the ring keeps the most
//! recent spans and drops the oldest, so tracing is always on and never
//! grows without bound.

use crate::clock::ticks;
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One completed span: a named interval attributed to a request.
/// Timestamps are process ticks (microseconds, see [`crate::ticks`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// The request this span belongs to; 0 means "no request context".
    pub request: u64,
    /// Static span name (`parse`, `fixpoint`, `queue-wait`, ...).
    pub name: &'static str,
    pub start_us: u64,
    pub end_us: u64,
}

impl SpanRecord {
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

thread_local! {
    static CURRENT_REQUEST: Cell<u64> = const { Cell::new(0) };
}

/// Run `f` with `id` as the current request id on this thread, restoring
/// the previous id (supporting nesting) on exit.
pub fn with_request<R>(id: u64, f: impl FnOnce() -> R) -> R {
    let previous = CURRENT_REQUEST.with(|current| current.replace(id));
    let result = f();
    CURRENT_REQUEST.with(|current| current.set(previous));
    result
}

/// The request id set by the innermost [`with_request`] on this thread.
pub fn current_request() -> Option<u64> {
    let id = CURRENT_REQUEST.with(Cell::get);
    if id == 0 {
        None
    } else {
        Some(id)
    }
}

/// A bounded ring of [`SpanRecord`]s plus the request-id mint.
#[derive(Debug)]
pub struct Tracer {
    ring: Mutex<VecDeque<SpanRecord>>,
    capacity: usize,
    next_id: AtomicU64,
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::new(4096)
    }
}

impl Tracer {
    /// A tracer keeping at most `capacity` (at least 1) recent spans.
    pub fn new(capacity: usize) -> Tracer {
        Tracer {
            ring: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            next_id: AtomicU64::new(1),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Mint a fresh request id (1, 2, 3, ... — never 0).
    pub fn mint(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Record a completed span, evicting the oldest record when full.
    pub fn record(&self, request: u64, name: &'static str, start_us: u64, end_us: u64) {
        let mut ring = self.ring.lock().unwrap();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(SpanRecord {
            request,
            name,
            start_us,
            end_us,
        });
    }

    /// Start a span attributed to [`current_request`] (or request 0);
    /// it records itself when the returned guard drops.
    pub fn start(&self, name: &'static str) -> SpanTimer<'_> {
        SpanTimer {
            tracer: self,
            name,
            request: current_request().unwrap_or(0),
            start_us: ticks(),
        }
    }

    /// The retained spans, oldest first.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        self.ring.lock().unwrap().iter().copied().collect()
    }

    /// Render spans as ndjson, one object per line (trailing newline
    /// included when nonempty).  Span names are static identifiers, so no
    /// JSON escaping is required.
    pub fn to_ndjson(spans: &[SpanRecord]) -> String {
        let mut out = String::new();
        for span in spans {
            out.push_str(&format!(
                "{{\"request\":{},\"span\":\"{}\",\"start_us\":{},\"end_us\":{},\"duration_us\":{}}}\n",
                span.request,
                span.name,
                span.start_us,
                span.end_us,
                span.duration_us()
            ));
        }
        out
    }
}

/// Drop guard returned by [`Tracer::start`]; records the span on drop.
#[derive(Debug)]
pub struct SpanTimer<'a> {
    tracer: &'a Tracer,
    name: &'static str,
    request: u64,
    start_us: u64,
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        self.tracer
            .record(self.request, self.name, self.start_us, ticks());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mint_never_returns_zero_and_increments() {
        let tracer = Tracer::new(8);
        assert_eq!(tracer.mint(), 1);
        assert_eq!(tracer.mint(), 2);
        assert_eq!(tracer.mint(), 3);
    }

    #[test]
    fn ring_is_bounded_and_drops_oldest() {
        let tracer = Tracer::new(3);
        for i in 0..5u64 {
            tracer.record(i, "parse", i * 10, i * 10 + 1);
        }
        let spans = tracer.snapshot();
        assert_eq!(spans.len(), 3);
        assert_eq!(
            spans.iter().map(|s| s.request).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
    }

    #[test]
    fn request_context_nests_and_restores() {
        assert_eq!(current_request(), None);
        let inner = with_request(7, || {
            let outer = current_request();
            let nested = with_request(9, current_request);
            (outer, nested, current_request())
        });
        assert_eq!(inner, (Some(7), Some(9), Some(7)));
        assert_eq!(current_request(), None);
    }

    #[test]
    fn span_timer_records_on_drop_with_context() {
        let tracer = Tracer::new(8);
        with_request(42, || {
            let _span = tracer.start("fixpoint");
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        let spans = tracer.snapshot();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].request, 42);
        assert_eq!(spans[0].name, "fixpoint");
        assert!(spans[0].end_us >= spans[0].start_us);
    }

    #[test]
    fn ndjson_is_one_object_per_line() {
        let tracer = Tracer::new(8);
        tracer.record(1, "parse", 10, 25);
        tracer.record(1, "fixpoint", 26, 100);
        let dump = Tracer::to_ndjson(&tracer.snapshot());
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"request\":1,\"span\":\"parse\",\"start_us\":10,\"end_us\":25,\"duration_us\":15}"
        );
        assert!(lines[1].contains("\"span\":\"fixpoint\""));
    }
}
