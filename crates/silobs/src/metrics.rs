//! The metrics registry: named atomic instruments, collected into
//! mergeable raw form and summarized into the compact shape that crosses
//! the wire.
//!
//! Instruments are cheap clonable handles (an `Arc` around an atomic);
//! registration takes a lock, but a handle obtained once is lock-free to
//! update forever — callers register at construction time and update on
//! the hot path.

use crate::hist::{HistogramSnapshot, ShardedHistogram};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing atomic counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn new() -> Counter {
        Counter::default()
    }

    pub fn incr(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An atomic gauge: a signed level that moves both ways (queue depths,
/// in-flight request counts).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    pub fn new() -> Gauge {
        Gauge::default()
    }

    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
struct Instruments {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Arc<ShardedHistogram>>,
}

/// A named collection of instruments.
///
/// `counter`/`gauge`/`histogram` get-or-create by name, so independent
/// components can share an instrument by agreeing on its name.  Collection
/// ([`Registry::collect`]) walks the `BTreeMap`s, so output order is
/// deterministic (sorted by name).
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Instruments>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter registered under `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().unwrap();
        inner.counters.entry(name.to_string()).or_default().clone()
    }

    /// The gauge registered under `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock().unwrap();
        inner.gauges.entry(name.to_string()).or_default().clone()
    }

    /// The histogram registered under `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<ShardedHistogram> {
        let mut inner = self.inner.lock().unwrap();
        inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(ShardedHistogram::default()))
            .clone()
    }

    /// Read every instrument into mergeable raw form, sorted by name.
    pub fn collect(&self) -> RawMetrics {
        let inner = self.inner.lock().unwrap();
        RawMetrics {
            counters: inner
                .counters
                .iter()
                .map(|(name, c)| (name.clone(), c.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(name, g)| (name.clone(), g.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(name, h)| (name.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time read of a registry, still carrying full histogram
/// bucket arrays so reads from several registries (one per engine shard)
/// merge into exact combined distributions before quantile extraction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RawMetrics {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, i64)>,
    histograms: Vec<(String, HistogramSnapshot)>,
}

impl RawMetrics {
    pub fn new() -> RawMetrics {
        RawMetrics::default()
    }

    /// Add (or bump) a counter by name — for exporting values that live
    /// outside any registry, like the store's per-namespace totals.
    pub fn push_counter(&mut self, name: &str, value: u64) {
        match self
            .counters
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
        {
            Ok(at) => self.counters[at].1 += value,
            Err(at) => self.counters.insert(at, (name.to_string(), value)),
        }
    }

    /// Add (or accumulate into) a gauge by name.
    pub fn push_gauge(&mut self, name: &str, value: i64) {
        match self.gauges.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
            Ok(at) => self.gauges[at].1 += value,
            Err(at) => self.gauges.insert(at, (name.to_string(), value)),
        }
    }

    /// Add (or merge into) a histogram by name — for exporting latency
    /// distributions that live outside any registry, like the store's
    /// peer-fetch timings.
    pub fn push_histogram(&mut self, name: &str, snapshot: &HistogramSnapshot) {
        match self
            .histograms
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
        {
            Ok(at) => self.histograms[at].1.merge(snapshot),
            Err(at) => self
                .histograms
                .insert(at, (name.to_string(), snapshot.clone())),
        }
    }

    /// Merge another read into this one: counters and gauges sum by name,
    /// histograms merge bucket-by-bucket.  Used to combine per-shard
    /// engine registries into one service-wide view.
    pub fn absorb(&mut self, other: &RawMetrics) {
        for (name, value) in &other.counters {
            self.push_counter(name, *value);
        }
        for (name, value) in &other.gauges {
            self.push_gauge(name, *value);
        }
        for (name, snapshot) in &other.histograms {
            match self
                .histograms
                .binary_search_by(|(n, _)| n.as_str().cmp(name))
            {
                Ok(at) => self.histograms[at].1.merge(snapshot),
                Err(at) => self.histograms.insert(at, (name.clone(), snapshot.clone())),
            }
        }
    }

    /// Collapse to the compact wire shape with **interval** histogram
    /// summaries: counters and gauges stay cumulative (consumers diff
    /// them between samples), but each histogram is summarized over only
    /// the samples recorded since `earlier` (a previous read of the same
    /// instruments), via [`HistogramSnapshot::delta`].  This is the
    /// flight recorder's sample shape — a true per-interval p99 instead
    /// of an ever-flattening lifetime quantile.
    pub fn summarize_interval(&self, earlier: &RawMetrics) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(name, snapshot)| {
                    let interval = match earlier
                        .histograms
                        .binary_search_by(|(n, _)| n.as_str().cmp(name))
                    {
                        Ok(at) => snapshot.delta(&earlier.histograms[at].1),
                        Err(_) => snapshot.clone(),
                    };
                    (name.clone(), HistogramSummary::of(&interval))
                })
                .collect(),
        }
    }

    /// Collapse to the compact wire shape: histograms become quantile
    /// summaries.
    pub fn summarize(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(name, snapshot)| (name.clone(), HistogramSummary::of(snapshot)))
                .collect(),
        }
    }
}

/// The quantile summary of one histogram, as shipped over the wire.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    pub p999: u64,
}

impl HistogramSummary {
    pub fn of(snapshot: &HistogramSnapshot) -> HistogramSummary {
        HistogramSummary {
            count: snapshot.count(),
            sum: snapshot.sum(),
            min: snapshot.min(),
            max: snapshot.max(),
            p50: snapshot.p50(),
            p90: snapshot.p90(),
            p99: snapshot.p99(),
            p999: snapshot.p999(),
        }
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// The compact metrics view that crosses the wire: sorted name/value
/// pairs plus per-histogram quantile summaries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, i64)>,
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl MetricsSnapshot {
    /// Splice in metrics from a disjoint namespace (the server layer's
    /// `server.*` entries joining an engine's `engine.*`/`store.*`).
    /// Colliding counter/gauge names sum; colliding histogram names keep
    /// the existing entry (quantile summaries cannot be merged exactly,
    /// and layer prefixes make collisions a bug upstream).
    pub fn extend_disjoint(&mut self, other: MetricsSnapshot) {
        for (name, value) in other.counters {
            match self.counters.binary_search_by(|(n, _)| n.cmp(&name)) {
                Ok(at) => self.counters[at].1 += value,
                Err(at) => self.counters.insert(at, (name, value)),
            }
        }
        for (name, value) in other.gauges {
            match self.gauges.binary_search_by(|(n, _)| n.cmp(&name)) {
                Ok(at) => self.gauges[at].1 += value,
                Err(at) => self.gauges.insert(at, (name, value)),
            }
        }
        for (name, summary) in other.histograms {
            match self.histograms.binary_search_by(|(n, _)| n.cmp(&name)) {
                Ok(_) => debug_assert!(false, "histogram name collision: {name}"),
                Err(at) => self.histograms.insert(at, (name, summary)),
            }
        }
    }

    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|at| self.counters[at].1)
    }

    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|at| self.gauges[at].1)
    }

    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|at| &self.histograms[at].1)
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_state_by_name() {
        let registry = Registry::new();
        let a = registry.counter("requests");
        let b = registry.counter("requests");
        a.incr();
        b.add(2);
        assert_eq!(registry.counter("requests").get(), 3);

        let g = registry.gauge("depth");
        g.set(5);
        g.sub(2);
        assert_eq!(registry.gauge("depth").get(), 3);

        registry.histogram("lat").record(100);
        assert_eq!(registry.histogram("lat").count(), 1);
    }

    #[test]
    fn collect_is_sorted_and_summarizes() {
        let registry = Registry::new();
        registry.counter("z.last").add(9);
        registry.counter("a.first").add(1);
        registry.gauge("depth").set(-2);
        let h = registry.histogram("lat");
        for v in 1..=100u64 {
            h.record(v);
        }
        let raw = registry.collect();
        let snap = raw.summarize();
        assert_eq!(
            snap.counters,
            vec![("a.first".to_string(), 1), ("z.last".to_string(), 9)]
        );
        assert_eq!(snap.gauge("depth"), Some(-2));
        let lat = snap.histogram("lat").unwrap();
        assert_eq!(lat.count, 100);
        assert_eq!(lat.min, 1);
        assert_eq!(lat.max, 100);
        assert!(lat.p50 >= 45 && lat.p50 <= 55, "p50 = {}", lat.p50);
        assert!(snap.histogram("nope").is_none());
    }

    #[test]
    fn absorb_merges_shards_exactly() {
        let a = Registry::new();
        let b = Registry::new();
        a.counter("hits").add(3);
        b.counter("hits").add(4);
        b.counter("misses").add(1);
        a.gauge("depth").set(2);
        b.gauge("depth").set(5);
        for v in 0..500u64 {
            a.histogram("lat").record(v);
            b.histogram("lat").record(v + 500);
        }
        let mut merged = a.collect();
        merged.absorb(&b.collect());
        let snap = merged.summarize();
        assert_eq!(snap.counter("hits"), Some(7));
        assert_eq!(snap.counter("misses"), Some(1));
        assert_eq!(snap.gauge("depth"), Some(7));
        let lat = snap.histogram("lat").unwrap();
        assert_eq!(lat.count, 1000);
        assert_eq!(lat.min, 0);
        assert_eq!(lat.max, 999);
    }

    #[test]
    fn extend_disjoint_splices_namespaces() {
        let engine = Registry::new();
        engine.counter("engine.requests").add(10);
        let server = Registry::new();
        server.counter("server.accepted").add(2);
        server.histogram("server.serve_us").record(40);
        let mut snap = engine.collect().summarize();
        snap.extend_disjoint(server.collect().summarize());
        assert_eq!(snap.counter("engine.requests"), Some(10));
        assert_eq!(snap.counter("server.accepted"), Some(2));
        assert_eq!(snap.histogram("server.serve_us").unwrap().count, 1);
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }
}
