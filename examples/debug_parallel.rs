//! The "debugging parallel programs" use of the analysis (paper, §1): check
//! hand-written `||` annotations against the interference analysis, and
//! cross-check with the dynamic race detector.
//!
//! ```text
//! cargo run --example debug_parallel
//! ```

use sil_parallel::prelude::*;

/// A hand-parallelized program with a subtle bug: the programmer loaded the
/// *left* child twice, so the two "independent" recursive calls actually walk
/// the same subtree.
const BUGGY: &str = r#"
program buggy

procedure main()
  root: handle
begin
  root := build(5);
  bump(root, 1)
end

procedure bump(h: handle; n: int)
  l, r: handle
begin
  if h <> nil then
  begin
    h.value := h.value + n || l := h.left || r := h.left;
    bump(l, n) || bump(r, n)
  end
end

function build(depth: int) handle
  t, l, r: handle; d: int
begin
  t := nil;
  if depth > 0 then
  begin
    t := new();
    t.value := depth;
    d := depth - 1;
    l := build(d);
    r := build(d);
    t.left := l;
    t.right := r
  end
end
return (t)
"#;

fn check(label: &str, source: &str) {
    let (program, types) = frontend(source).unwrap();

    // Static check: every parallel statement against the path-matrix
    // interference analysis.
    let violations = verify_parallel_program(&program, &types);
    println!(
        "[{label}] static verification: {} violation(s)",
        violations.len()
    );
    for v in &violations {
        println!("    {v}");
    }

    // Dynamic check: run deterministically with per-arm access logging.
    let config = RunConfig {
        detect_races: true,
        ..RunConfig::default()
    };
    let mut interp = Interpreter::with_config(&program, &types, config);
    let outcome = interp.run().expect("program runs");
    println!(
        "[{label}] dynamic race detector: {} race(s)",
        outcome.races.len()
    );
    for race in outcome.races.iter().take(5) {
        println!("    {race}");
    }
    println!();
}

fn main() {
    // The correctly parallelized program of Figure 8 passes both checks.
    check(
        "figure-8",
        sil_parallel::lang::testsrc::ADD_AND_REVERSE_PARALLEL,
    );

    // The buggy program is caught by the static verifier, and the dynamic
    // detector confirms the race is real.
    check("buggy", BUGGY);

    println!(
        "The static verifier flags the buggy `bump(l, n) || bump(r, n)` because the\n\
         path matrix shows l and r may name the same node (both were loaded from\n\
         h.left); the race detector then observes conflicting writes to the same\n\
         node's value field at run time."
    );
}
