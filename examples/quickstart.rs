//! Quickstart: parse a SIL program, analyze it, parallelize it, run both
//! versions and compare.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use sil_parallel::prelude::*;

fn main() {
    // A small SIL program: build a tree, then bump every node's value.
    let source = r#"
program quickstart

procedure main()
  root: handle; d: int
begin
  d := 10;
  root := build(d);
  bump(root, 5)
end

procedure bump(t: handle; n: int)
  l, r: handle
begin
  if t <> nil then
  begin
    t.value := t.value + n;
    l := t.left;
    r := t.right;
    bump(l, n);
    bump(r, n)
  end
end

function build(depth: int) handle
  t, l, r: handle; d: int
begin
  t := nil;
  if depth > 0 then
  begin
    t := new();
    t.value := depth;
    d := depth - 1;
    l := build(d);
    r := build(d);
    t.left := l;
    t.right := r
  end
end
return (t)
"#;

    // 1. Front end: parse, normalize to basic handle statements, type check.
    let (program, types) = frontend(source).expect("the program is valid SIL");
    println!(
        "parsed `{}` with {} procedures\n",
        program.name,
        program.procedures.len()
    );

    // 2. Path-matrix interference analysis (the paper's Section 4).
    let analysis = analyze_program(&program, &types);
    println!(
        "analysis: {} round(s), structure preserved as a TREE: {}",
        analysis.rounds,
        analysis.preserves_tree()
    );
    let bump = analysis.procedure("bump").expect("bump is reachable");
    let before_recursion = bump.state_before_call("bump", 0).unwrap();
    println!("\npath matrix before the recursive calls in `bump`:");
    println!("{}", before_recursion.matrix.render());

    // 3. Parallelization (the paper's Section 5).
    let (parallel, report) = parallelize_program(&program, &types);
    println!("--- parallelized program ---");
    println!("{}", pretty_program(&parallel));
    println!("--- why ---\n{report}");

    // 4. Execute sequential and parallelized versions; compare work and span.
    let mut seq_interp = Interpreter::new(&program, &types);
    let seq = seq_interp.run().expect("sequential run succeeds");
    let printed = pretty_program(&parallel);
    let (par_program, par_types) = frontend(&printed).unwrap();
    let mut par_interp = Interpreter::new(&par_program, &par_types);
    let par = par_interp.run().expect("parallel run succeeds");

    println!("sequential : {}", seq.cost);
    println!("parallel   : {}", par.cost);
    for p in [2u64, 4, 8] {
        println!(
            "  projected speedup on {p} processors: {:.2}x",
            par.cost.speedup(p)
        );
    }

    // 5. And run the parallel version on real threads via rayon.
    let mut executor = ParallelExecutor::new(&par_program, &par_types);
    let threaded = executor.run().expect("rayon run succeeds");
    assert_eq!(threaded.allocated_nodes, seq.allocated_nodes);
    println!(
        "\nrayon execution allocated {} nodes and matched the sequential result",
        threaded.allocated_nodes
    );
}
