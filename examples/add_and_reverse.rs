//! The paper's worked example, end to end: Figure 7 (the `add_and_reverse`
//! program and its path matrices at points A, B and C) and Figure 8 (the
//! automatically parallelized program), followed by execution on the cost
//! model and on real threads.
//!
//! ```text
//! cargo run --example add_and_reverse
//! ```

use sil_parallel::lang::testsrc;
use sil_parallel::prelude::*;

fn main() {
    let (program, types) = frontend(testsrc::ADD_AND_REVERSE).unwrap();

    // ----- Figure 7: the path matrices at the three program points --------
    let analysis = analyze_program(&program, &types);
    let main_proc = analysis.procedure("main").unwrap();
    let add_n = analysis.procedure("add_n").unwrap();
    let reverse = analysis.procedure("reverse").unwrap();

    println!("== Figure 7: path matrices ==\n");
    println!("pA (main, before add_n(lside, 1)):");
    println!(
        "{}",
        main_proc
            .state_before_call("add_n", 0)
            .unwrap()
            .matrix
            .render()
    );
    println!("pB (add_n, before the recursive calls):");
    println!(
        "{}",
        add_n.state_before_call("add_n", 0).unwrap().matrix.render()
    );
    println!("pC (reverse, before the recursive calls):");
    println!(
        "{}",
        reverse
            .state_before_call("reverse", 0)
            .unwrap()
            .matrix
            .render()
    );

    println!(
        "lside/rside unrelated at A: {}",
        main_proc
            .state_before_call("add_n", 0)
            .unwrap()
            .matrix
            .unrelated("lside", "rside")
    );
    println!(
        "l/r unrelated at B: {}",
        add_n
            .state_before_call("add_n", 0)
            .unwrap()
            .matrix
            .unrelated("l", "r")
    );
    println!(
        "structure warnings (the temporary DAG in reverse's swap): {}",
        analysis.warnings.len()
    );
    for w in &analysis.warnings {
        println!("  {w}");
    }

    // ----- Figure 8: the parallelized program ------------------------------
    let (parallel, report) = parallelize_program(&program, &types);
    println!("\n== Figure 8: parallelized program ==\n");
    println!("{}", pretty_program(&parallel));
    println!("{report}");

    // The result must itself verify clean.
    let printed = pretty_program(&parallel);
    let (par_program, par_types) = frontend(&printed).unwrap();
    let violations = verify_parallel_program(&par_program, &par_types);
    println!("re-verification violations: {}", violations.len());

    // ----- Execution --------------------------------------------------------
    let mut seq = Interpreter::new(&program, &types);
    let seq_out = seq.run().unwrap();
    let mut par = Interpreter::new(&par_program, &par_types);
    let par_out = par.run().unwrap();
    println!("\n== Execution ==");
    println!("sequential: {}", seq_out.cost);
    println!("parallel  : {}", par_out.cost);
    println!(
        "projected speedups: p=2 {:.2}x, p=4 {:.2}x, p=8 {:.2}x",
        par_out.cost.speedup(2),
        par_out.cost.speedup(4),
        par_out.cost.speedup(8)
    );

    // The two versions compute the same tree.
    let seq_snapshot = seq.snapshot_of(&seq_out, "root").unwrap();
    let par_snapshot = par.snapshot_of(&par_out, "root").unwrap();
    assert_eq!(seq_snapshot, par_snapshot);
    println!(
        "\nboth versions produced the same {}-node tree (height {})",
        seq_snapshot.size(),
        seq_snapshot.height()
    );

    // Finally, run the Figure 8 program on real threads.
    let mut exec = ParallelExecutor::new(&par_program, &par_types);
    let threaded = exec.run().unwrap();
    assert_eq!(exec.snapshot_of(&threaded, "root").unwrap(), seq_snapshot);
    println!("rayon-backed execution matches as well");
}
