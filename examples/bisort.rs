//! The adaptive bitonic sort (Bilardi & Nicolau [BN86]) that the paper's
//! conclusions report analyzing "resulting in significant parallelism
//! detection".
//!
//! The example runs the whole pipeline on the Olden-style `bisort` SIL
//! program: analysis, parallelization, cost-model execution, and a
//! comparison against the native Rust kernels (sequential and rayon).
//!
//! ```text
//! cargo run --release --example bisort
//! ```

use sil_parallel::prelude::*;
use sil_parallel::workloads::native;
use std::time::Instant;

fn main() {
    let depth = 10u32;
    let src = Workload::Bisort.source(depth);
    let (program, types) = frontend(&src).unwrap();

    // ----- analysis ---------------------------------------------------------
    let analysis = analyze_program(&program, &types);
    println!(
        "analysis of bisort: {} rounds, tree preserved: {}",
        analysis.rounds,
        analysis.preserves_tree()
    );
    let summaries = &analysis.summaries;
    for name in ["bisort", "bimerge"] {
        let summary = &summaries[name];
        println!("  {name}: argument modes = {:?}", summary.handle_args);
    }

    // ----- parallelization ---------------------------------------------------
    let (parallel, report) = parallelize_program(&program, &types);
    println!("\nparallel statements introduced: {}", report.count());
    for record in &report.records {
        println!("{record}");
    }

    // ----- cost-model execution ----------------------------------------------
    let config = RunConfig {
        store_capacity: 1 << (depth + 2),
        ..RunConfig::default()
    };
    let mut seq = Interpreter::with_config(&program, &types, config.clone());
    let seq_out = seq.run().unwrap();
    let printed = pretty_program(&parallel);
    let (par_program, par_types) = frontend(&printed).unwrap();
    let mut par = Interpreter::with_config(&par_program, &par_types, config);
    let par_out = par.run().unwrap();
    println!("\ncost model, {} nodes:", seq_out.allocated_nodes);
    println!("  sequential: {}", seq_out.cost);
    println!("  parallel  : {}", par_out.cost);
    println!(
        "  projected speedups: p=4 {:.2}x, p=16 {:.2}x",
        par_out.cost.speedup(4),
        par_out.cost.speedup(16)
    );

    // the two versions must sort to the same tree
    assert_eq!(
        seq.snapshot_of(&seq_out, "root").unwrap(),
        par.snapshot_of(&par_out, "root").unwrap()
    );

    // ----- native wall-clock comparison ---------------------------------------
    let native_depth = 18u32;
    let mut t_seq = native::Tree::perfect_keyed(native_depth, 1);
    let start = Instant::now();
    let spare = native::bisort_seq(&mut t_seq, i64::MAX, true);
    let seq_time = start.elapsed();
    let sorted = native::bisort_sequence(&t_seq, spare);
    assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "native sort is correct"
    );

    let mut t_par = native::Tree::perfect_keyed(native_depth, 1);
    let start = Instant::now();
    let _ = native::bisort_par(&mut t_par, i64::MAX, true);
    let par_time = start.elapsed();
    assert_eq!(t_seq, t_par);

    println!(
        "\nnative bisort on a {}-node tree with {} rayon thread(s): sequential {:?}, rayon {:?} ({:.2}x)",
        (1u64 << native_depth) - 1,
        rayon::current_num_threads(),
        seq_time,
        par_time,
        seq_time.as_secs_f64() / par_time.as_secs_f64().max(1e-9)
    );
    if rayon::current_num_threads() == 1 {
        println!("(single-core host: the rayon run can only show task overhead; see the cost-model numbers above)");
    }
}
