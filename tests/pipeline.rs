//! Whole-pipeline integration tests: parse → analyze → parallelize → verify
//! → execute (sequential, deterministic-parallel, rayon-parallel) → compare,
//! for every workload in the library.

use sil_parallel::prelude::*;
use sil_parallel::runtime::NodeSnapshot;
use sil_parallel::workloads::native;

/// Run a program on the deterministic interpreter and return the outcome and
/// a snapshot of the given root variable.
fn run_and_snapshot(
    src: &str,
    root_var: &str,
    detect_races: bool,
) -> (sil_parallel::runtime::Outcome, Option<NodeSnapshot>) {
    let (program, types) = frontend(src).unwrap();
    let config = RunConfig {
        detect_races,
        store_capacity: 1 << 18,
        ..RunConfig::default()
    };
    let mut interp = Interpreter::with_config(&program, &types, config);
    let outcome = interp.run().expect("program runs");
    let snapshot = interp.snapshot_of(&outcome, root_var);
    (outcome, snapshot)
}

/// Parallelize a program and return the pretty-printed result.
fn parallelized_source(src: &str) -> (String, TransformReport) {
    let (program, types) = frontend(src).unwrap();
    let (parallel, report) = parallelize_program(&program, &types);
    (pretty_program(&parallel), report)
}

#[test]
fn every_workload_survives_the_full_pipeline() {
    for workload in Workload::ALL {
        let size = workload.test_size();
        let src = workload.source(size);

        // analysis terminates and classifies the heap
        let (program, types) = frontend(&src).unwrap();
        let analysis = analyze_program(&program, &types);
        assert!(
            analysis.rounds < 16,
            "{}: analysis did not converge quickly",
            workload.name()
        );

        // parallelization produces a valid program
        let (par_src, _report) = parallelized_source(&src);
        let (par_program, par_types) =
            frontend(&par_src).unwrap_or_else(|e| panic!("{}: {e}", workload.name()));

        // the parallelized program passes the static verifier
        let violations = verify_parallel_program(&par_program, &par_types);
        assert!(
            violations.is_empty(),
            "{}: parallelizer output failed verification: {:?}",
            workload.name(),
            violations.iter().map(|v| v.to_string()).collect::<Vec<_>>()
        );

        // both versions execute, with identical work and race-free parallel arms
        let (seq_out, seq_snap) = run_and_snapshot(&src, "root", false);
        let (par_out, par_snap) = run_and_snapshot(&par_src, "root", true);
        assert_eq!(
            seq_out.cost.work,
            par_out.cost.work,
            "{}: packing must preserve the executed statements",
            workload.name()
        );
        assert!(
            par_out.cost.span <= seq_out.cost.span,
            "{}: parallelization may never lengthen the critical path",
            workload.name()
        );
        assert!(
            par_out.races.is_empty(),
            "{}: analysis-approved parallel program raced: {:?}",
            workload.name(),
            par_out
                .races
                .iter()
                .map(|r| r.to_string())
                .collect::<Vec<_>>()
        );
        assert_eq!(
            seq_out.allocated_nodes,
            par_out.allocated_nodes,
            "{}: allocation count must match",
            workload.name()
        );
        // when the workload exposes a tree root, the heaps must be identical
        if let (Some(a), Some(b)) = (seq_snap, par_snap) {
            assert_eq!(a, b, "{}: heap results differ", workload.name());
        }
    }
}

#[test]
fn recursive_workloads_actually_get_shorter_spans() {
    for workload in [
        Workload::AddAndReverse,
        Workload::TreeSum,
        Workload::TreeMirror,
        Workload::TreeAdd,
        Workload::Bisort,
    ] {
        let src = workload.source(6);
        let (par_src, report) = parallelized_source(&src);
        assert!(
            report.count() > 0,
            "{}: expected some parallelism",
            workload.name()
        );
        let (seq_out, _) = run_and_snapshot(&src, "root", false);
        let (par_out, _) = run_and_snapshot(&par_src, "root", false);
        assert!(
            par_out.cost.span < seq_out.cost.span,
            "{}: span should shrink (seq {} vs par {})",
            workload.name(),
            seq_out.cost.span,
            par_out.cost.span
        );
        assert!(par_out.cost.parallelism() > 1.1, "{}", workload.name());
    }
}

#[test]
fn available_parallelism_grows_with_input_size() {
    let parallelism_at = |depth: u32| {
        let src = Workload::AddAndReverse.source(depth);
        let (par_src, _) = parallelized_source(&src);
        let (out, _) = run_and_snapshot(&par_src, "root", false);
        out.cost.parallelism()
    };
    let small = parallelism_at(4);
    let large = parallelism_at(9);
    assert!(
        large > small * 1.5,
        "parallelism should grow with the tree: {small:.2} -> {large:.2}"
    );
}

#[test]
fn rayon_execution_matches_deterministic_execution() {
    for workload in [Workload::AddAndReverse, Workload::TreeAdd, Workload::Bisort] {
        let src = workload.source(7);
        let (par_src, _) = parallelized_source(&src);
        let (program, types) = frontend(&par_src).unwrap();

        let mut det = Interpreter::new(&program, &types);
        let det_out = det.run().unwrap();
        let det_snap = det.snapshot_of(&det_out, "root").unwrap();

        let mut exec = ParallelExecutor::new(&program, &types);
        let par_out = exec.run().unwrap();
        let par_snap = exec.snapshot_of(&par_out, "root").unwrap();

        assert_eq!(det_snap, par_snap, "{}", workload.name());
        assert_eq!(det_out.allocated_nodes, par_out.allocated_nodes);
    }
}

#[test]
fn sil_bisort_agrees_with_native_bisort() {
    let depth = 6u32;
    let src = Workload::Bisort.source(depth);
    let (_, sil_snapshot) = run_and_snapshot(&src, "root", false);
    let sil_values = sil_snapshot.expect("bisort builds a tree").in_order();

    let mut native_tree = native::Tree::perfect_keyed(depth, 1);
    let _ = native::bisort_seq(&mut native_tree, 99_991, true);
    let native_values = native_tree.unwrap().in_order();

    assert_eq!(
        sil_values, native_values,
        "the SIL bisort and the native bisort must produce the same tree"
    );
}

#[test]
fn sil_tree_sum_agrees_with_native_sum() {
    let depth = 7u32;
    let src = Workload::TreeSum.source(depth);
    let (program, types) = frontend(&src).unwrap();
    let mut interp = Interpreter::new(&program, &types);
    let outcome = interp.run().unwrap();
    let total = outcome
        .main_frame
        .get("total")
        .and_then(|v| v.as_int())
        .expect("total is an int");
    let native_total = native::sum_seq(&native::Tree::perfect(depth));
    assert_eq!(total, native_total);
}

#[test]
fn sil_list_sum_agrees_with_native_list_sum() {
    let len = 24u32;
    let src = Workload::ListSum.source(len);
    let (program, types) = frontend(&src).unwrap();
    let mut interp = Interpreter::new(&program, &types);
    let outcome = interp.run().unwrap();
    let total = outcome
        .main_frame
        .get("total")
        .and_then(|v| v.as_int())
        .expect("total is an int");
    assert_eq!(total, native::list_sum_seq(&native::build_list(len)));
}

#[test]
fn sil_list_reverse_agrees_with_native_reversal() {
    let len = 24u32;
    let src = Workload::ListReverse.source(len);
    let (program, types) = frontend(&src).unwrap();
    let mut interp = Interpreter::new(&program, &types);
    let outcome = interp.run().unwrap();
    // After reversal the head is the old tail, whose value is 1.
    let check = outcome
        .main_frame
        .get("check")
        .and_then(|v| v.as_int())
        .expect("check is an int");
    let native_reversed = native::list_reverse_seq(native::build_list(len));
    assert_eq!(Some(check), native_reversed.as_ref().map(|n| n.value));
    assert_eq!(check, 1);
}

#[test]
fn structural_workloads_report_the_temporary_dag_but_end_as_trees() {
    for workload in [Workload::AddAndReverse, Workload::TreeMirror] {
        let src = workload.source(5);
        let (program, types) = frontend(&src).unwrap();
        let analysis = analyze_program(&program, &types);
        // the node swap raises a possible-DAG warning...
        assert!(
            analysis
                .warnings
                .iter()
                .any(|w| w.kind == StructureKind::PossiblyDag),
            "{}: expected the temporary DAG to be reported",
            workload.name()
        );
        // ...but main ends with a TREE again
        let main = analysis.procedure("main").unwrap();
        assert!(
            main.exit.structure.is_tree(),
            "{}: main should end with a TREE, got {}",
            workload.name(),
            main.exit.structure
        );
    }
}

#[test]
fn read_only_workloads_raise_no_structure_warnings() {
    for workload in [Workload::TreeSum, Workload::TreeHeight, Workload::Leftmost] {
        let src = workload.source(5);
        let (program, types) = frontend(&src).unwrap();
        let analysis = analyze_program(&program, &types);
        assert!(
            analysis.preserves_tree(),
            "{}: unexpected warnings {:?}",
            workload.name(),
            analysis.warnings
        );
    }
}

#[test]
fn figure_8_source_and_generated_parallelization_agree() {
    // Parallelizing the sequential Figure 7 program must yield a program
    // with the same parallel statements as the hand-written Figure 8 text.
    let (generated_src, _) = parallelized_source(sil_parallel::lang::testsrc::ADD_AND_REVERSE);
    for fragment in [
        "lside := root.left || rside := root.right",
        "add_n(lside, 1) || add_n(rside, -1)",
        "h.value := h.value + n || l := h.left || r := h.right",
        "add_n(l, n) || add_n(r, n)",
        "reverse(l) || reverse(r)",
        "h.left := r || h.right := l",
    ] {
        assert!(
            generated_src.contains(fragment),
            "missing `{fragment}` in:\n{generated_src}"
        );
    }
}
