//! Property-based tests across the whole stack.
//!
//! * algebraic laws of the path-expression domain (coverage, generalization,
//!   concatenation, set join) exercised through the public API,
//! * the central soundness property of the reproduction: for arbitrary
//!   generated SIL programs, the parallelizer's output (a) still type
//!   checks, (b) passes the static verifier, (c) executes to exactly the
//!   same heap as the sequential original, and (d) never races according to
//!   the dynamic detector.
//!
//! The environment has no proptest, so the properties are driven by an
//! explicit deterministic sampler: every case is reproducible from the case
//! index printed in the failure message.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sil_parallel::pathmatrix::{Certainty, Dir, Link, Path, PathMatrix, PathSet};
use sil_parallel::prelude::*;
use sil_parallel::workloads::{GeneratorConfig, ProgramGenerator};

// ---------------------------------------------------------------------------
// samplers
// ---------------------------------------------------------------------------

fn sample_dir(rng: &mut StdRng) -> Dir {
    match rng.gen_range(0..3) {
        0 => Dir::Left,
        1 => Dir::Right,
        _ => Dir::Down,
    }
}

fn sample_link(rng: &mut StdRng) -> Link {
    let dir = sample_dir(rng);
    let n = rng.gen_range(1u32..4);
    if rng.gen_bool(0.5) {
        Link::exact(dir, n)
    } else {
        Link::at_least(dir, n)
    }
}

fn sample_certainty(rng: &mut StdRng) -> Certainty {
    if rng.gen_bool(0.5) {
        Certainty::Definite
    } else {
        Certainty::Possible
    }
}

fn sample_path(rng: &mut StdRng) -> Path {
    let certainty = sample_certainty(rng);
    if rng.gen_bool(0.3) {
        Path::same(certainty)
    } else {
        let len = rng.gen_range(1usize..4);
        Path::from_links((0..len).map(|_| sample_link(rng)), certainty)
    }
}

fn sample_pathset(rng: &mut StdRng) -> PathSet {
    let len = rng.gen_range(0usize..4);
    PathSet::from_paths((0..len).map(|_| sample_path(rng)).collect::<Vec<_>>())
}

/// A concrete path: a sequence of concrete edge directions.
fn sample_concrete(rng: &mut StdRng) -> Vec<Dir> {
    let len = rng.gen_range(1usize..6);
    (0..len)
        .map(|_| {
            if rng.gen_bool(0.5) {
                Dir::Left
            } else {
                Dir::Right
            }
        })
        .collect()
}

fn concrete_to_path(dirs: &[Dir]) -> Path {
    Path::from_links(dirs.iter().map(|d| Link::exact(*d, 1)), Certainty::Definite)
}

/// Run `cases` deterministic samples of `property`, labelling failures with
/// the case index (re-runnable: the sampler is seeded with that index).
fn for_cases(cases: u64, mut property: impl FnMut(&mut StdRng)) {
    for case in 0..cases {
        let mut rng = StdRng::seed_from_u64(0x5EED_0000 + case);
        property(&mut rng);
    }
}

// ---------------------------------------------------------------------------
// path-domain laws
// ---------------------------------------------------------------------------

/// `generalize` is an upper bound of both inputs.
#[test]
fn generalize_is_an_upper_bound() {
    for_cases(256, |rng| {
        let a = sample_path(rng);
        let b = sample_path(rng);
        if let Some(g) = a.generalize(&b) {
            assert!(g.covers(&a), "{g} should cover {a}");
            assert!(g.covers(&b), "{g} should cover {b}");
        }
    });
}

/// Coverage is reflexive and transitive on randomly generated paths.
#[test]
fn coverage_is_reflexive_and_transitive() {
    for_cases(256, |rng| {
        let a = sample_path(rng);
        let b = sample_path(rng);
        let c = sample_path(rng);
        assert!(a.covers(&a));
        if a.covers(&b) && b.covers(&c) {
            assert!(a.covers(&c), "{a} covers {b} covers {c}");
        }
    });
}

/// Concatenation length arithmetic: min lengths add, and definiteness is
/// the conjunction.
#[test]
fn concat_adds_min_lengths() {
    for_cases(256, |rng| {
        let a = sample_path(rng);
        let b = sample_path(rng);
        let c = a.concat(&b);
        assert_eq!(c.min_len(), a.min_len() + b.min_len());
        assert_eq!(c.is_definite(), a.is_definite() && b.is_definite());
    });
}

/// Stripping the first edge of an abstraction covers the concrete suffix
/// whenever the abstraction covered the concrete path (the soundness
/// argument behind the `a := b.f` transfer function).
#[test]
fn strip_first_is_sound() {
    for_cases(256, |rng| {
        let abs = sample_path(rng);
        let conc = sample_concrete(rng);
        let conc_path = concrete_to_path(&conc);
        if abs.covers(&conc_path) {
            let first = conc[0];
            let suffix = &conc[1..];
            let stripped = abs.strip_first(first);
            if suffix.is_empty() {
                assert!(
                    stripped.iter().any(|p| p.is_same()),
                    "{abs} minus {first:?} must allow S"
                );
            } else {
                let suffix_path = concrete_to_path(suffix);
                assert!(
                    stripped.iter().any(|p| p.covers(&suffix_path)),
                    "{abs} minus {first:?} must cover {suffix_path}"
                );
            }
        }
    });
}

/// Path sets stay within their cardinality bound and never lose coverage
/// of inserted paths.
#[test]
fn pathset_insert_preserves_coverage() {
    for_cases(256, |rng| {
        let len = rng.gen_range(1usize..12);
        let paths: Vec<Path> = (0..len).map(|_| sample_path(rng)).collect();
        let set = PathSet::from_paths(paths.clone());
        assert!(set.len() <= 4, "bounded at MAX_PATHS");
        for p in &paths {
            assert!(
                set.iter()
                    .any(|q| q.covers(p) || (q.is_same() && p.is_same())),
                "{set} lost {p}"
            );
        }
    });
}

/// The control-flow join of path sets is an upper bound of both sides in
/// either argument order (the widening applied when an entry grows past
/// its cardinality bound is order-sensitive, so syntactic equality of
/// `a ⊔ b` and `b ⊔ a` is *not* required — only soundness), and joining
/// a set with itself changes nothing.
#[test]
fn pathset_join_laws() {
    for_cases(256, |rng| {
        let a = sample_pathset(rng);
        let b = sample_pathset(rng);
        let ab = a.join(&b);
        let ba = b.join(&a);
        for (join, label) in [(&ab, "a⊔b"), (&ba, "b⊔a")] {
            assert!(join.covers(&a), "{label} = {join} should cover {a}");
            assert!(join.covers(&b), "{label} = {join} should cover {b}");
        }
        assert_eq!(a.join(&a), a);
    });
}

/// Matrix joins are upper bounds entry-wise and idempotent.
#[test]
fn matrix_join_laws() {
    let names = ["a", "b", "c", "d"];
    let sample_entries = |rng: &mut StdRng| -> Vec<((usize, usize), PathSet)> {
        let len = rng.gen_range(0usize..8);
        (0..len)
            .map(|_| {
                (
                    (rng.gen_range(0usize..4), rng.gen_range(0usize..4)),
                    sample_pathset(rng),
                )
            })
            .collect()
    };
    let build = |entries: &[((usize, usize), PathSet)]| {
        let mut m = PathMatrix::with_handles(names);
        for ((i, j), set) in entries {
            if i != j {
                m.set(names[*i], names[*j], *set);
            }
        }
        m
    };
    for_cases(256, |rng| {
        let m1 = build(&sample_entries(rng));
        let m2 = build(&sample_entries(rng));
        // The join is an upper bound entry-wise (in both argument orders) and
        // idempotent.  As for path sets, syntactic commutativity is not
        // guaranteed once the per-entry widening kicks in.
        for joined in [m1.join(&m2), m2.join(&m1)] {
            for a in names {
                for b in names {
                    if a == b {
                        continue;
                    }
                    let entry = joined.get(a, b);
                    assert!(
                        entry.covers(&m1.get(a, b)),
                        "join entry {entry} does not cover {}",
                        m1.get(a, b)
                    );
                    assert!(
                        entry.covers(&m2.get(a, b)),
                        "join entry {entry} does not cover {}",
                        m2.get(a, b)
                    );
                }
            }
        }
        assert!(m1.join(&m1).same_relations(&m1));
    });
}

// ---------------------------------------------------------------------------
// whole-pipeline soundness on generated programs
// ---------------------------------------------------------------------------

/// For arbitrary generated programs, packing is semantics- and
/// race-preserving.
#[test]
fn parallelization_of_generated_programs_is_sound() {
    for_cases(24, |rng| {
        let seed = rng.gen_range(0u64..u64::MAX);
        let mut generator = ProgramGenerator::new(GeneratorConfig {
            statements: 40,
            handle_vars: 6,
            int_vars: 3,
            seed,
        });
        let program = sil_parallel::lang::normalize_program(&generator.generate());
        let types = sil_parallel::lang::check_program(&program).expect("generated program types");

        // Parallelize and re-verify.
        let (parallel, _report) = parallelize_program(&program, &types);
        let printed = pretty_program(&parallel);
        let (par_program, par_types) = frontend(&printed).expect("packed output reparses");
        let violations = verify_parallel_program(&par_program, &par_types);
        assert!(
            violations.is_empty(),
            "seed {seed}: verifier rejected packer output: {:?}",
            violations.iter().map(|v| v.to_string()).collect::<Vec<_>>()
        );

        // Execute both versions; the parallel one with race detection.
        let config = RunConfig {
            store_capacity: 1 << 12,
            ..RunConfig::default()
        };
        let mut seq_interp = Interpreter::with_config(&program, &types, config.clone());
        let seq = seq_interp.run().expect("sequential run");
        let race_config = RunConfig {
            detect_races: true,
            ..config
        };
        let mut par_interp = Interpreter::with_config(&par_program, &par_types, race_config);
        let par = par_interp.run().expect("parallel run");

        assert!(par.races.is_empty(), "seed {seed}: races {:?}", par.races);
        assert_eq!(seq.cost.work, par.cost.work);
        assert!(par.cost.span <= seq.cost.span);
        assert_eq!(seq.allocated_nodes, par.allocated_nodes);

        // The final values of every variable of main agree.
        for (name, value) in seq.main_frame.iter() {
            let par_value = par.main_frame.get(name);
            assert_eq!(
                Some(*value),
                par_value,
                "seed {seed}: variable {name} differs"
            );
        }

        // And the heaps reachable from every handle variable agree.
        for (name, _) in seq.main_frame.iter() {
            let a = seq_interp.snapshot_of(&seq, name);
            let b = par_interp.snapshot_of(&par, name);
            assert_eq!(a, b, "seed {seed}: heap reachable from {name} differs");
        }
    });
}

/// The analysis never crashes and always converges on generated
/// programs, whatever structure they build.
#[test]
fn analysis_always_converges() {
    for_cases(24, |rng| {
        let seed = rng.gen_range(0u64..u64::MAX);
        let statements = rng.gen_range(10usize..80);
        let mut generator = ProgramGenerator::new(GeneratorConfig {
            statements,
            handle_vars: 5,
            int_vars: 3,
            seed,
        });
        let program = sil_parallel::lang::normalize_program(&generator.generate());
        let types = sil_parallel::lang::check_program(&program).unwrap();
        let analysis = analyze_program(&program, &types);
        assert!(analysis.rounds <= 16);
        assert!(analysis.procedure("main").is_some());
    });
}
