//! Property-based tests across the whole stack.
//!
//! * algebraic laws of the path-expression domain (coverage, generalization,
//!   concatenation, set join) exercised through the public API,
//! * the central soundness property of the reproduction: for arbitrary
//!   generated SIL programs, the parallelizer's output (a) still type
//!   checks, (b) passes the static verifier, (c) executes to exactly the
//!   same heap as the sequential original, and (d) never races according to
//!   the dynamic detector.

use proptest::prelude::*;
use sil_parallel::pathmatrix::{Certainty, Dir, Link, Path, PathMatrix, PathSet};
use sil_parallel::prelude::*;
use sil_parallel::workloads::{GeneratorConfig, ProgramGenerator};

// ---------------------------------------------------------------------------
// strategies
// ---------------------------------------------------------------------------

fn dir_strategy() -> impl Strategy<Value = Dir> {
    prop_oneof![Just(Dir::Left), Just(Dir::Right), Just(Dir::Down)]
}

fn link_strategy() -> impl Strategy<Value = Link> {
    (dir_strategy(), 1u32..4, any::<bool>()).prop_map(|(dir, n, exact)| {
        if exact {
            Link::exact(dir, n)
        } else {
            Link::at_least(dir, n)
        }
    })
}

fn path_strategy() -> impl Strategy<Value = Path> {
    let certainty = prop_oneof![Just(Certainty::Definite), Just(Certainty::Possible)];
    prop_oneof![
        certainty.clone().prop_map(Path::same),
        (proptest::collection::vec(link_strategy(), 1..4), certainty)
            .prop_map(|(links, c)| Path::from_links(links, c)),
    ]
}

fn pathset_strategy() -> impl Strategy<Value = PathSet> {
    proptest::collection::vec(path_strategy(), 0..4).prop_map(PathSet::from_paths)
}

/// A concrete path: a sequence of concrete edge directions.
fn concrete_path_strategy() -> impl Strategy<Value = Vec<Dir>> {
    proptest::collection::vec(prop_oneof![Just(Dir::Left), Just(Dir::Right)], 1..6)
}

fn concrete_to_path(dirs: &[Dir]) -> Path {
    Path::from_links(
        dirs.iter().map(|d| Link::exact(*d, 1)).collect(),
        Certainty::Definite,
    )
}

// ---------------------------------------------------------------------------
// path-domain laws
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `generalize` is an upper bound of both inputs.
    #[test]
    fn generalize_is_an_upper_bound(a in path_strategy(), b in path_strategy()) {
        if let Some(g) = a.generalize(&b) {
            prop_assert!(g.covers(&a), "{g} should cover {a}");
            prop_assert!(g.covers(&b), "{g} should cover {b}");
        }
    }

    /// Coverage is reflexive and transitive on randomly generated paths.
    #[test]
    fn coverage_is_reflexive_and_transitive(
        a in path_strategy(),
        b in path_strategy(),
        c in path_strategy()
    ) {
        prop_assert!(a.covers(&a));
        if a.covers(&b) && b.covers(&c) {
            prop_assert!(a.covers(&c), "{a} covers {b} covers {c}");
        }
    }

    /// Concatenation length arithmetic: min lengths add, and definiteness is
    /// the conjunction.
    #[test]
    fn concat_adds_min_lengths(a in path_strategy(), b in path_strategy()) {
        let c = a.concat(&b);
        prop_assert_eq!(c.min_len(), a.min_len() + b.min_len());
        prop_assert_eq!(c.is_definite(), a.is_definite() && b.is_definite());
    }

    /// Stripping the first edge of an abstraction covers the concrete suffix
    /// whenever the abstraction covered the concrete path (the soundness
    /// argument behind the `a := b.f` transfer function).
    #[test]
    fn strip_first_is_sound(abs in path_strategy(), conc in concrete_path_strategy()) {
        let conc_path = concrete_to_path(&conc);
        if abs.covers(&conc_path) {
            let first = conc[0];
            let suffix = &conc[1..];
            let stripped = abs.strip_first(first);
            if suffix.is_empty() {
                prop_assert!(
                    stripped.iter().any(|p| p.is_same()),
                    "{abs} minus {first:?} must allow S"
                );
            } else {
                let suffix_path = concrete_to_path(suffix);
                prop_assert!(
                    stripped.iter().any(|p| p.covers(&suffix_path)),
                    "{abs} minus {first:?} must cover {suffix_path}"
                );
            }
        }
    }

    /// Path sets stay within their cardinality bound and never lose coverage
    /// of inserted paths.
    #[test]
    fn pathset_insert_preserves_coverage(paths in proptest::collection::vec(path_strategy(), 1..12)) {
        let set = PathSet::from_paths(paths.clone());
        prop_assert!(set.len() <= 4, "bounded at MAX_PATHS");
        for p in &paths {
            prop_assert!(
                set.iter().any(|q| q.covers(p) || (q.is_same() && p.is_same())),
                "{set} lost {p}"
            );
        }
    }

    /// The control-flow join of path sets is an upper bound of both sides in
    /// either argument order (the widening applied when an entry grows past
    /// its cardinality bound is order-sensitive, so syntactic equality of
    /// `a ⊔ b` and `b ⊔ a` is *not* required — only soundness), and joining
    /// a set with itself changes nothing.
    #[test]
    fn pathset_join_laws(a in pathset_strategy(), b in pathset_strategy()) {
        let ab = a.join(&b);
        let ba = b.join(&a);
        for (join, label) in [(&ab, "a⊔b"), (&ba, "b⊔a")] {
            prop_assert!(join.covers(&a), "{label} = {join} should cover {a}");
            prop_assert!(join.covers(&b), "{label} = {join} should cover {b}");
        }
        prop_assert_eq!(a.join(&a), a);
    }

    /// Matrix joins are commutative and idempotent.
    #[test]
    fn matrix_join_laws(
        entries in proptest::collection::vec(
            ((0usize..4, 0usize..4), pathset_strategy()),
            0..8
        ),
        entries2 in proptest::collection::vec(
            ((0usize..4, 0usize..4), pathset_strategy()),
            0..8
        )
    ) {
        let names = ["a", "b", "c", "d"];
        let build = |entries: &[((usize, usize), PathSet)]| {
            let mut m = PathMatrix::with_handles(names);
            for ((i, j), set) in entries {
                if i != j {
                    m.set(names[*i], names[*j], set.clone());
                }
            }
            m
        };
        let m1 = build(&entries);
        let m2 = build(&entries2);
        // The join is an upper bound entry-wise (in both argument orders) and
        // idempotent.  As for path sets, syntactic commutativity is not
        // guaranteed once the per-entry widening kicks in.
        for joined in [m1.join(&m2), m2.join(&m1)] {
            for a in names {
                for b in names {
                    if a == b {
                        continue;
                    }
                    let entry = joined.get(a, b);
                    prop_assert!(
                        entry.covers(&m1.get(a, b)),
                        "join entry {entry} does not cover {}",
                        m1.get(a, b)
                    );
                    prop_assert!(
                        entry.covers(&m2.get(a, b)),
                        "join entry {entry} does not cover {}",
                        m2.get(a, b)
                    );
                }
            }
        }
        prop_assert!(m1.join(&m1).same_relations(&m1));
    }
}

// ---------------------------------------------------------------------------
// whole-pipeline soundness on generated programs
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For arbitrary generated programs, packing is semantics- and
    /// race-preserving.
    #[test]
    fn parallelization_of_generated_programs_is_sound(seed in any::<u64>()) {
        let mut generator = ProgramGenerator::new(GeneratorConfig {
            statements: 40,
            handle_vars: 6,
            int_vars: 3,
            seed,
        });
        let program = sil_parallel::lang::normalize_program(&generator.generate());
        let types = sil_parallel::lang::check_program(&program).expect("generated program types");

        // Parallelize and re-verify.
        let (parallel, _report) = parallelize_program(&program, &types);
        let printed = pretty_program(&parallel);
        let (par_program, par_types) = frontend(&printed).expect("packed output reparses");
        let violations = verify_parallel_program(&par_program, &par_types);
        prop_assert!(
            violations.is_empty(),
            "seed {seed}: verifier rejected packer output: {:?}",
            violations.iter().map(|v| v.to_string()).collect::<Vec<_>>()
        );

        // Execute both versions; the parallel one with race detection.
        let config = RunConfig { store_capacity: 1 << 12, ..RunConfig::default() };
        let mut seq_interp = Interpreter::with_config(&program, &types, config.clone());
        let seq = seq_interp.run().expect("sequential run");
        let race_config = RunConfig { detect_races: true, ..config };
        let mut par_interp = Interpreter::with_config(&par_program, &par_types, race_config);
        let par = par_interp.run().expect("parallel run");

        prop_assert!(par.races.is_empty(), "seed {seed}: races {:?}", par.races);
        prop_assert_eq!(seq.cost.work, par.cost.work);
        prop_assert!(par.cost.span <= seq.cost.span);
        prop_assert_eq!(seq.allocated_nodes, par.allocated_nodes);

        // The final values of every variable of main agree.
        for (name, value) in seq.main_frame.iter() {
            let par_value = par.main_frame.get(name);
            prop_assert_eq!(
                Some(*value),
                par_value,
                "seed {}: variable {} differs",
                seed,
                name
            );
        }

        // And the heaps reachable from every handle variable agree.
        for (name, _) in seq.main_frame.iter() {
            let a = seq_interp.snapshot_of(&seq, name);
            let b = par_interp.snapshot_of(&par, name);
            prop_assert_eq!(a, b, "seed {}: heap reachable from {} differs", seed, name);
        }
    }

    /// The analysis never crashes and always converges on generated
    /// programs, whatever structure they build.
    #[test]
    fn analysis_always_converges(seed in any::<u64>(), statements in 10usize..80) {
        let mut generator = ProgramGenerator::new(GeneratorConfig {
            statements,
            handle_vars: 5,
            int_vars: 3,
            seed,
        });
        let program = sil_parallel::lang::normalize_program(&generator.generate());
        let types = sil_parallel::lang::check_program(&program).unwrap();
        let analysis = analyze_program(&program, &types);
        prop_assert!(analysis.rounds <= 16);
        prop_assert!(analysis.procedure("main").is_some());
    }
}
