//! # sil-parallel
//!
//! A full reproduction of Hendren & Nicolau, *Parallelizing Programs with
//! Recursive Data Structures* (UC Irvine TR 89-33 / ICPP 1989), as a Rust
//! workspace.  This facade crate re-exports the individual components:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`lang`] | `sil-lang` | the SIL language: parser, AST, type checker, normalizer, pretty printer |
//! | [`pathmatrix`] | `sil-pathmatrix` | path expressions and path matrices (§4) |
//! | [`analysis`] | `sil-analysis` | the path-matrix interference analysis, structural verification, interference sets (§4–5) |
//! | [`parallelizer`] | `sil-parallelizer` | statement/call packing, sequence splitting, parallel-program verification (§5) |
//! | [`runtime`] | `sil-runtime` | interpreter, rayon-backed parallel executor, work/span cost model, race detector |
//! | [`workloads`] | `sil-workloads` | benchmark SIL programs, random program generator, native Rust reference kernels |
//! | [`engine`] | `sil-engine` | batched, memoizing analysis service: a unified content-addressed `SummaryStore` (typed program/summary/walk namespaces, lock-striped, LRU/LFU/adaptive eviction) shared across engine views, SCC-parallel scheduling, the typed Request/Response service protocol with the `sild` daemon (fingerprint-sharded engines over one shared store, Unix/TCP sockets), and the `silp` CLI |
//!
//! ## The 30-second tour
//!
//! ```
//! use sil_parallel::prelude::*;
//!
//! // 1. Parse + type check the paper's Figure 7 program.
//! let (program, types) = frontend(sil_parallel::lang::testsrc::ADD_AND_REVERSE).unwrap();
//!
//! // 2. Run the path-matrix interference analysis.  The node swap in
//! //    `reverse` is reported as a temporary possible DAG, but `main` ends
//! //    with the structure classified as a TREE again.
//! let analysis = analyze_program(&program, &types);
//! let main_exit = &analysis.procedure("main").unwrap().exit;
//! assert!(main_exit.structure.is_tree());
//!
//! // 3. Parallelize: this reproduces Figure 8.
//! let (parallel, report) = parallelize_program(&program, &types);
//! assert!(report.count() >= 6);
//!
//! // 4. Execute both versions and compare work/span.
//! let mut seq = Interpreter::new(&program, &types);
//! let seq_out = seq.run().unwrap();
//! let printed = sil_parallel::lang::pretty_program(&parallel);
//! let (par_program, par_types) = frontend(&printed).unwrap();
//! let mut par = Interpreter::new(&par_program, &par_types);
//! let par_out = par.run().unwrap();
//! assert_eq!(seq_out.cost.work, par_out.cost.work);
//! assert!(par_out.cost.span < seq_out.cost.span);
//! ```

pub use sil_analysis as analysis;
pub use sil_engine as engine;
pub use sil_lang as lang;
pub use sil_parallelizer as parallelizer;
pub use sil_pathmatrix as pathmatrix;
pub use sil_runtime as runtime;
pub use sil_workloads as workloads;

/// The most common imports in one place.
pub mod prelude {
    pub use sil_analysis::{analyze_program, AbstractState, AnalysisResult, StructureKind};
    pub use sil_engine::{
        Engine, EngineConfig, EvictionPolicy, LocalService, ProcessOptions, RemoteService, Request,
        Response, Service, ShardedService, SummaryStore,
    };
    pub use sil_lang::{frontend, parse_program, pretty_program, Program};
    pub use sil_parallelizer::{parallelize_program, verify_parallel_program, TransformReport};
    pub use sil_pathmatrix::{PathMatrix, PathSet};
    pub use sil_runtime::{Interpreter, ParallelExecutor, RunConfig};
    pub use sil_workloads::programs::Workload;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work_together() {
        let src = Workload::TreeSum.source(4);
        let (program, types) = frontend(&src).unwrap();
        let analysis = analyze_program(&program, &types);
        assert!(analysis.preserves_tree());
        let (parallel, _) = parallelize_program(&program, &types);
        assert!(parallel.procedure("sum").is_some());
    }

    #[test]
    fn engine_is_reachable_through_the_facade() {
        let engine = Engine::new(EngineConfig::default());
        let src = Workload::TreeSum.source(3);
        let first = engine.analyze_source(&src).unwrap();
        let second = engine.analyze_source(&src).unwrap();
        assert_eq!(first.fingerprint, second.fingerprint);
        assert_eq!(engine.stats().programs.hits, 1);
    }

    #[test]
    fn shared_store_is_reachable_through_the_facade() {
        let store = SummaryStore::shared(EngineConfig::default().store_config());
        let a = Engine::with_store(EngineConfig::default(), store.clone());
        let b = Engine::with_store(EngineConfig::default(), store);
        let src = Workload::TreeSum.source(3);
        a.analyze_source(&src).unwrap();
        b.analyze_source(&src).unwrap();
        assert_eq!(b.stats().programs.hits, 1, "b warm-hits a's store entry");
        assert_eq!(b.store_stats().programs.entries, 1);
    }

    #[test]
    fn service_protocol_is_reachable_through_the_facade() {
        let service = ShardedService::new(2, EngineConfig::default());
        let src = Workload::TreeSum.source(3);
        match service.call(Request::analyze(src)) {
            Response::Analyzed { summary, .. } => {
                assert!(summary.preserves_tree);
                assert!(!summary.cache_hit);
            }
            other => panic!("expected an analyzed response, got {other:?}"),
        }
    }
}
